"""FleetManager: shared pools, tenant isolation, metering, recovery.

The isolation suite (S3) is the heart of this file: one tenant's codec
fault must poison only that tenant's pipeline — never the shared
EncodeStage or its co-tenants — and one tenant's crash() must leak no
shared-pool threads.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.errors import ConfigError, GinjaError
from repro.core.codec import ObjectCodec
from repro.core.config import SharedPoolConfig, TenantPolicy
from repro.cloud.memory import InMemoryObjectStore
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.fleet import FleetManager
from repro.storage.memory import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=64 * 1024)
POLICY = TenantPolicy(
    batch=3, safety=50, batch_timeout=0.05, safety_timeout=10.0, uploaders=1
)


@pytest.fixture
def fleet():
    backend = InMemoryObjectStore()
    manager = FleetManager(
        backend, SharedPoolConfig(encoders=3, downloaders=2)
    )
    manager.start()
    yield manager
    # Tests that poison a tenant clean it off the roster themselves;
    # anything left here must stop cleanly.
    manager.stop_all()


def admit(fleet, tenant_id, policy=POLICY):
    """Create a fresh database and admit it; returns (ginja, db)."""
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    ginja = fleet.add_tenant(tenant_id, disk, POSTGRES_PROFILE, policy)
    return ginja, MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)


def commit_rows(db, tenant_id, n, start=0):
    for row in range(start, start + n):
        db.put("t", f"row-{row}", f"{tenant_id}-{row}".encode())


class TestFleetLifecycle:
    def test_add_tenant_requires_started_fleet(self):
        manager = FleetManager(InMemoryObjectStore())
        with pytest.raises(GinjaError, match="start the fleet"):
            manager.add_tenant("a", MemoryFileSystem(), POSTGRES_PROFILE)

    def test_tenant_ids_validated(self, fleet):
        for bad in ("", "a/b", "tenants/x"):
            with pytest.raises(GinjaError, match="invalid tenant id"):
                fleet.add_tenant(bad, MemoryFileSystem(), POSTGRES_PROFILE)

    def test_duplicate_tenant_rejected(self, fleet):
        _, db = admit(fleet, "dup")
        try:
            with pytest.raises(GinjaError, match="already exists"):
                fleet.add_tenant(
                    "dup", MemoryFileSystem(), POSTGRES_PROFILE, POLICY
                )
        finally:
            db.close()

    def test_bad_policy_rejected_at_admission(self, fleet):
        with pytest.raises(ConfigError):
            fleet.add_tenant(
                "bad", MemoryFileSystem(), POSTGRES_PROFILE,
                TenantPolicy(batch=100, safety=10),  # B > S
            )
        assert fleet.tenants() == ()

    def test_keyspaces_are_isolated(self, fleet):
        ginja_a, db_a = admit(fleet, "alpha")
        ginja_b, db_b = admit(fleet, "beta")
        commit_rows(db_a, "alpha", 10)
        commit_rows(db_b, "beta", 10)
        assert ginja_a.drain(timeout=30.0)
        assert ginja_b.drain(timeout=30.0)
        backend = fleet.transport
        keys = [info.key for info in backend.list()]
        assert keys  # something was uploaded
        assert all(
            key.startswith(("tenants/alpha/", "tenants/beta/"))
            for key in keys
        )
        assert any(key.startswith("tenants/alpha/WAL/") for key in keys)
        assert any(key.startswith("tenants/beta/WAL/") for key in keys)
        db_a.close()
        db_b.close()

    def test_remove_tenant_purge_clears_keyspace(self, fleet):
        ginja, db = admit(fleet, "gone")
        _, db_keep = admit(fleet, "keep")
        commit_rows(db, "gone", 5)
        commit_rows(db_keep, "keep", 5)
        assert ginja.drain(timeout=30.0)
        assert fleet.tenant("keep").drain(timeout=30.0)
        db.close()
        fleet.remove_tenant("gone", purge=True)
        keys = [info.key for info in fleet.transport.list()]
        assert keys  # keep's objects survive
        assert not any(key.startswith("tenants/gone/") for key in keys)
        assert "gone" not in fleet.tenants()
        with pytest.raises(GinjaError, match="unknown tenant"):
            fleet.tenant("gone")
        db_keep.close()

    def test_stop_all_stops_tenants_and_pools(self):
        manager = FleetManager(InMemoryObjectStore(), SharedPoolConfig())
        manager.start()
        _, db = admit(manager, "only")
        commit_rows(db, "only", 5)
        db.close()
        manager.stop_all()
        assert manager.tenants() == ()
        assert not manager.encode_pool.running
        assert not manager.download_pool.running


class TestSharedPoolIsolation:
    """S3: faults and crashes stay inside the tenant that caused them."""

    def test_codec_fault_poisons_only_the_faulty_tenant(self, fleet):
        ginja_bad, db_bad = admit(fleet, "faulty")
        ginja_ok, db_ok = admit(fleet, "healthy")

        class FaultyCodec(ObjectCodec):
            def encode(self, payload):
                raise RuntimeError("injected codec fault")

        # Swap the faulty tenant's codec under its pipeline: every encode
        # job it submits into the *shared* stage now raises.
        ginja_bad.pipeline._codec = FaultyCodec()
        commit_rows(db_bad, "faulty", 5)
        deadline = time.monotonic() + 5
        while ginja_bad.pipeline.failed is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert isinstance(ginja_bad.pipeline.failed, RuntimeError)

        # The shared pools are untouched and the co-tenant still commits.
        assert fleet.encode_pool.running
        assert fleet.download_pool.running
        commit_rows(db_ok, "healthy", 10)
        assert ginja_ok.drain(timeout=30.0)
        assert ginja_ok.pipeline.failed is None
        keys = [info.key for info in fleet.transport.list("tenants/healthy/")]
        assert any(key.startswith("tenants/healthy/WAL/") for key in keys)

        # Clean the poisoned tenant off the roster so the fixture's
        # stop_all is clean: crash first (detaches interception, so the
        # DB's close-time checkpoint doesn't hit the dead pipeline),
        # then remove (a no-op stop for a crashed instance).
        fleet.crash_tenant("faulty")
        db_bad.close()
        db_ok.close()
        fleet.remove_tenant("faulty")

    def test_tenant_crash_leaks_no_shared_pool_threads(self, fleet):
        def alive_names():
            return sorted(
                t.name for t in threading.enumerate() if t.is_alive()
            )

        baseline = alive_names()
        ginja, db = admit(fleet, "victim")
        commit_rows(db, "victim", 10)
        assert ginja.drain(timeout=30.0)
        db.close()
        fleet.crash_tenant("victim")

        # Shared pools survive the crash...
        assert fleet.encode_pool.running
        assert fleet.download_pool.running
        shared = [n for n in alive_names() if n.startswith("fleet-")]
        assert len(shared) == 3 + 2  # encoders + downloaders, unchanged

        # ...and every tenant-owned thread dies: the roster entry is the
        # only trace left.  Poll — uploader threads exit asynchronously.
        deadline = time.monotonic() + 5
        while alive_names() != baseline and time.monotonic() < deadline:
            time.sleep(0.01)
        assert alive_names() == baseline
        fleet.remove_tenant("victim")

    def test_crashed_tenant_blocks_reuse_until_recovered(self, fleet):
        ginja, db = admit(fleet, "dead")
        commit_rows(db, "dead", 5)
        assert ginja.drain(timeout=30.0)
        db.close()
        fleet.crash_tenant("dead")
        # The dead instance stays on the roster, so re-admission under
        # the same id is refused until remove/recover decides its fate.
        with pytest.raises(GinjaError, match="already exists"):
            fleet.add_tenant(
                "dead", MemoryFileSystem(), POSTGRES_PROFILE, POLICY
            )
        ginja2, report = fleet.recover_tenant(
            "dead", MemoryFileSystem(), POSTGRES_PROFILE, POLICY
        )
        assert report.files_restored > 0
        assert fleet.tenant("dead") is ginja2
        db2 = MiniDB.open(ginja2.fs, POSTGRES_PROFILE, ENGINE)
        assert db2.get("t", "row-4") == b"dead-4"
        db2.close()

    def test_recover_refuses_running_tenant(self, fleet):
        _, db = admit(fleet, "live")
        try:
            with pytest.raises(GinjaError, match="still running"):
                fleet.recover_tenant(
                    "live", MemoryFileSystem(), POSTGRES_PROFILE, POLICY
                )
        finally:
            db.close()


class TestFleetRecovery:
    def test_rpo_zero_recovery_through_shared_download_pool(self, fleet):
        ginja, db = admit(fleet, "phoenix")
        _, db_co = admit(fleet, "bystander")
        commit_rows(db, "phoenix", 20)
        commit_rows(db_co, "bystander", 20)
        assert ginja.drain(timeout=30.0)
        db.close()
        fleet.crash_tenant("phoenix")

        assert fleet.download_pool.running  # restore must use this pool
        ginja2, report = fleet.recover_tenant(
            "phoenix", MemoryFileSystem(), POSTGRES_PROFILE, POLICY
        )
        assert ginja2.running
        assert report.files_restored > 0
        db2 = MiniDB.open(ginja2.fs, POSTGRES_PROFILE, ENGINE)
        for row in range(20):
            assert db2.get("t", f"row-{row}") == f"phoenix-{row}".encode()

        # The recovered tenant keeps committing through the shared pools,
        # and the bystander never noticed.
        commit_rows(db2, "phoenix", 5, start=20)
        assert ginja2.drain(timeout=30.0)
        assert fleet.tenant("bystander").drain(timeout=30.0)
        assert db_co.get("t", "row-19") == b"bystander-19"
        db2.close()
        db_co.close()

    def test_fsck_sweep_clean_and_detects_strays(self, fleet):
        _, db_a = admit(fleet, "a")
        _, db_b = admit(fleet, "b")
        commit_rows(db_a, "a", 10)
        commit_rows(db_b, "b", 10)
        assert fleet.tenant("a").drain(timeout=30.0)
        assert fleet.tenant("b").drain(timeout=30.0)
        sweep = fleet.fsck_sweep()
        assert sweep.ok
        assert set(sweep.tenants) == {"a", "b"}
        assert sweep.stray_keys == []

        # A key outside every tenant keyspace is a namespace violation.
        fleet.transport.put("WAL/999", b"stray")
        sweep = fleet.fsck_sweep()
        assert not sweep.ok
        assert sweep.stray_keys == ["WAL/999"]
        fleet.transport.delete("WAL/999")
        db_a.close()
        db_b.close()


class TestFleetMetering:
    def test_meters_reconcile_exactly(self, fleet):
        dbs = {}
        for tenant_id in ("m1", "m2", "m3"):
            _, dbs[tenant_id] = admit(fleet, tenant_id)
            commit_rows(dbs[tenant_id], tenant_id, 10)
        for tenant_id, db in dbs.items():
            assert fleet.tenant(tenant_id).drain(timeout=30.0)
            db.close()
        bank = fleet.meters
        assert set(bank.tenants()) == {"m1", "m2", "m3"}
        for verb in ("puts", "gets", "lists", "deletes"):
            for field in ("count", "bytes"):
                total = getattr(getattr(bank.total, verb), field)
                split = sum(
                    getattr(getattr(m, verb), field)
                    for m in bank.tenants().values()
                ) + getattr(getattr(bank.unattributed, verb), field)
                assert split == total, (verb, field)
        assert bank.unattributed.puts.count == 0
        assert all(m.puts.count > 0 for m in bank.tenants().values())

    def test_bill_attributes_dollars_per_tenant(self, fleet):
        _, db_small = admit(fleet, "small")
        _, db_big = admit(fleet, "big")
        commit_rows(db_small, "small", 5)
        commit_rows(db_big, "big", 50)
        assert fleet.tenant("small").drain(timeout=30.0)
        assert fleet.tenant("big").drain(timeout=30.0)
        bill = fleet.bill(elapsed=3600.0)
        assert {entry.tenant for entry in bill.tenants} == {"small", "big"}
        assert bill.total_dollars > 0
        assert (
            pytest.approx(bill.total_dollars)
            == bill.attributed_dollars + bill.unattributed_dollars
        )
        assert bill.tenant("big").dollars > bill.tenant("small").dollars
        assert bill.tenant("big").puts > bill.tenant("small").puts
        db_small.close()
        db_big.close()

    def test_per_tenant_stats_rollup(self, fleet):
        _, db = admit(fleet, "statty")
        commit_rows(db, "statty", 10)
        assert fleet.tenant("statty").drain(timeout=30.0)
        db.close()
        rollup = fleet.stats.tenant("statty")
        assert rollup.wal_batches > 0
        assert rollup.wal_objects > 0
        # The fleet totals include everything the tenants did.
        assert fleet.stats.wal_batches >= rollup.wal_batches

    def test_health_reports_tenants_and_pools(self, fleet):
        _, db = admit(fleet, "h1")
        health = fleet.health()
        assert health["started"]
        assert "h1" in health["tenants"]
        assert health["tenants"]["h1"]["running"]
        assert "encode_queue_depth" in health
        assert "puts_observed" in health["uploads"]
        reactor = health["reactor"]
        assert reactor["running"]
        assert "h1" in reactor["tenants"]
        lane = reactor["tenants"]["h1"]
        assert {"queued", "inflight", "backoffs", "retries"} <= set(lane)
        db.close()


class TestReactorOwnership:
    """The fleet owns ONE upload reactor; tenants get lanes, not threads."""

    def test_upload_threads_stay_constant_as_tenants_scale(self, fleet):
        def named(prefix):
            return [
                t.name for t in threading.enumerate()
                if t.is_alive() and t.name.startswith(prefix)
            ]

        tenants = [admit(fleet, f"s{i}") for i in range(6)]
        for i, (_, db) in enumerate(tenants):
            commit_rows(db, f"s{i}", 8)
        for ginja, _ in tenants:
            assert ginja.drain(timeout=30.0)

        # One event-loop thread drives every tenant's PUTs; the old
        # design would be holding 6 x uploaders dedicated threads here.
        reactorish = named("ginja-reactor")
        assert reactorish.count("ginja-reactor") == 1
        assert named("ginja-uploader") == []
        # The executor bridge is bounded by config, not by tenant count
        # (and idle with a native-async store: workers spawn lazily).
        io = [n for n in reactorish if n.startswith("ginja-reactor-io")]
        assert len(io) <= fleet.shared.reactor_io_threads

        for _, db in tenants:
            db.close()
