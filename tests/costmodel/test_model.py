"""§7.1's cost equations, anchored to the paper's reported numbers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.cloud.pricing import AZURE_BLOB_2017
from repro.costmodel.model import CostBreakdown, GinjaCostModel, WorkloadSpec


@pytest.fixture
def model():
    return GinjaCostModel()


FIG4_SPEC = WorkloadSpec()  # the module defaults ARE Figure 4's setup


class TestComponents:
    def test_db_storage_is_125_percent_compressed(self, model):
        # 10 GB x 1.25 / 1.43 x $0.023 = $0.201 — the paper notes the
        # 10 GB database "implies in a fixed C_DB_Storage of $0.20".
        assert model.db_storage_cost(FIG4_SPEC) == pytest.approx(0.201, abs=0.001)

    def test_db_storage_scales_linearly(self, model):
        # §7.2: "a 10x bigger database, this cost will be $2".
        big = WorkloadSpec(db_size_gb=100.0)
        assert model.db_storage_cost(big) == pytest.approx(2.01, abs=0.01)

    def test_wal_put_dominates_at_small_batch(self, model):
        spec = WorkloadSpec(updates_per_minute=1000.0)
        b10 = model.monthly_cost(spec, batch=10)
        assert b10.wal_put > 0.8 * b10.total

    def test_wal_put_inverse_in_batch(self, model):
        spec = WorkloadSpec(updates_per_minute=100.0)
        assert model.wal_put_cost(spec, 10) == pytest.approx(
            10 * model.wal_put_cost(spec, 100), rel=0.01
        )

    def test_wal_storage_tiny_for_moderate_workloads(self, model):
        assert model.wal_storage_cost(FIG4_SPEC) < 0.01

    def test_db_put_counts_20mb_objects(self, model):
        # Huge checkpoints split into ceil(size/20MB) PUTs.
        spec = WorkloadSpec(
            updates_per_minute=10_000.0, checkpoint_bytes_per_update=1000.0,
            compression_ratio=1.0,
        )
        # 10k up/min x 60 min x 1 kB = 600 MB per checkpoint -> 30 PUTs.
        per_month = 30 * 24  # one checkpoint per hour
        expected = model.prices.put_cost(30 * per_month)
        assert model.db_put_cost(spec) == pytest.approx(expected, rel=0.01)

    def test_rate_based_put_cost(self, model):
        # 1 sync/min -> 43200 PUTs/month -> $0.216 (Table 2's laboratory
        # WAL-PUT component).
        assert model.wal_put_cost_rate(1.0) == pytest.approx(0.216)


class TestFigure4Shape:
    """The qualitative claims of §7.2 about Figure 4."""

    def test_cost_decreases_with_batch(self, model):
        spec = WorkloadSpec(updates_per_minute=1000.0)
        totals = [model.monthly_cost(spec, b).total for b in (10, 100, 1000)]
        assert totals[0] > totals[1] > totals[2]

    def test_cost_increases_with_workload(self, model):
        totals = [
            model.monthly_cost(WorkloadSpec(updates_per_minute=w), 10).total
            for w in (10, 100, 1000)
        ]
        assert totals[0] < totals[1] < totals[2]

    def test_batch_effect_stronger_under_heavy_workload(self, model):
        """§7.2: the B-vs-cost relation 'is even more evident when
        considering more demanding update-heavy workloads'."""
        light = WorkloadSpec(updates_per_minute=10.0)
        heavy = WorkloadSpec(updates_per_minute=1000.0)
        light_ratio = (
            model.monthly_cost(light, 10).total / model.monthly_cost(light, 1000).total
        )
        heavy_ratio = (
            model.monthly_cost(heavy, 10).total / model.monthly_cost(heavy, 1000).total
        )
        assert heavy_ratio > light_ratio

    def test_many_sub_dollar_configurations_exist(self, model):
        """§7.2: 'plenty of possible configurations that cost less than
        $1 per month'."""
        cheap = [
            (w, b)
            for w in (10, 100, 1000)
            for b in (10, 100, 1000)
            if model.monthly_cost(WorkloadSpec(updates_per_minute=w), b).total < 1.0
        ]
        assert len(cheap) >= 4


class TestPITRCost:
    def test_snapshots_multiply_storage(self, model):
        base = model.db_storage_cost(FIG4_SPEC) + model.wal_storage_cost(FIG4_SPEC)
        assert model.pitr_storage_cost(FIG4_SPEC, 3) == pytest.approx(3 * base)

    def test_zero_snapshots_free(self, model):
        assert model.pitr_storage_cost(FIG4_SPEC, 0) == 0.0

    def test_negative_snapshots_rejected(self, model):
        with pytest.raises(ConfigError):
            model.pitr_storage_cost(FIG4_SPEC, -1)


class TestValidation:
    def test_breakdown_total(self):
        b = CostBreakdown(db_storage=1.0, db_put=2.0, wal_storage=3.0, wal_put=4.0)
        assert b.total == 10.0
        assert b.as_row()["C_Total"] == 10.0

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadSpec(db_size_gb=-1)
        with pytest.raises(ConfigError):
            WorkloadSpec(compression_ratio=0.5)
        with pytest.raises(ConfigError):
            WorkloadSpec(records_per_page=0)

    def test_bad_batch_rejected(self, model):
        with pytest.raises(ConfigError):
            model.wal_put_cost(FIG4_SPEC, 0)

    def test_other_price_books_work(self):
        azure = GinjaCostModel(AZURE_BLOB_2017)
        cost = azure.monthly_cost(FIG4_SPEC, 100)
        assert 0 < cost.total < 1.0  # Azure is similarly priced (§3 fn.2)


@given(
    w=st.floats(min_value=0.1, max_value=10_000),
    b_small=st.integers(min_value=1, max_value=100),
    b_factor=st.integers(min_value=2, max_value=100),
)
def test_cost_monotonic_in_batch_property(w, b_small, b_factor):
    model = GinjaCostModel()
    spec = WorkloadSpec(updates_per_minute=w)
    small = model.monthly_cost(spec, b_small).total
    large = model.monthly_cost(spec, b_small * b_factor).total
    assert large <= small + 1e-9
