"""Cross-provider billing: per-provider bills, repair-egress
attribution, and the analytic placement cost comparison."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    attribute_placement_costs,
    placement_comparison,
    placement_monthly_cost,
    render_comparison,
)
from repro.placement import build_placement
from repro.placement.policy import parse_placement


class TestAttribution:
    def test_each_provider_billed_through_its_own_book(self):
        store = build_placement(3, "mirror-3")
        store.put("k", b"v" * 1000)
        store.get("k")
        bill = attribute_placement_costs(store, elapsed=3600.0)
        assert len(bill.providers) == 3
        assert bill.total_dollars == pytest.approx(
            sum(b.dollars for b in bill.providers)
        )
        # Every provider holds the mirror copy; only the cheapest read
        # source served the GET.
        assert all(b.puts == 1 for b in bill.providers)
        assert sum(b.gets for b in bill.providers) == 1
        assert all(b.stored_bytes == 1000 for b in bill.providers)
        store.close()

    def test_repair_egress_attributed_to_the_source(self):
        store = build_placement(
            3, "wal=mirror-2,db=stripe-2-3,default=mirror-2",
        )
        store.put("WAL/1", b"w" * 500)
        store.put("DB/1", b"d" * 900)
        store.providers[0].kill()
        store.providers[0].revive(wipe=True)
        store.repair()
        bill = attribute_placement_costs(store, elapsed=60.0)
        wiped = bill.provider(store.providers[0].name)
        assert wiped is not None and wiped.repair_egress_bytes == 0
        egress = sum(b.repair_egress_bytes for b in bill.providers)
        assert egress > 0
        assert bill.repair_egress_dollars > 0
        assert "repair-egress" in bill.summary()
        store.close()


class TestAnalyticComparison:
    def test_comparison_covers_the_experiments_table(self):
        rows = placement_comparison(db_gb=1.0, puts_per_month=43200)
        by_spec = {row.spec: row for row in rows}
        assert set(by_spec) == {
            "mirror-1", "mirror-2", "mirror-3", "stripe-2-3",
        }
        # Equal durability (survives one provider), cheaper storage:
        # the stripe stores 1.5x vs mirror-2's 2x ...
        assert by_spec["stripe-2-3"].storage_overhead == 1.5
        assert by_spec["mirror-2"].storage_overhead == 2.0
        assert (by_spec["stripe-2-3"].storage_dollars
                < by_spec["mirror-2"].storage_dollars)
        # ... but pays one more PUT per sync, so at WAL-heavy rates the
        # mirror is the cheaper way to survive a provider loss.
        assert (by_spec["stripe-2-3"].total_dollars
                > by_spec["mirror-2"].total_dollars)
        assert by_spec["mirror-1"].survives_provider_losses == 0
        assert by_spec["mirror-3"].survives_provider_losses == 2

    def test_storage_bound_workload_flips_the_verdict(self):
        """With few syncs and big data, striping wins — the table's
        conclusion is workload-dependent, not a constant."""
        big = {
            row.spec: row for row in placement_comparison(
                db_gb=100.0, puts_per_month=1000,
            )
        }
        assert (big["stripe-2-3"].total_dollars
                < big["mirror-2"].total_dollars)

    def test_monthly_cost_composition(self):
        policy = parse_placement("mirror-2", 3)[""]
        cost = placement_monthly_cost(
            policy, db_gb=2.0, puts_per_month=100,
        )
        assert cost.total_dollars == pytest.approx(
            cost.storage_dollars + cost.put_dollars
        )
        assert cost.providers == 2

    def test_render_is_markdown(self):
        rows = placement_comparison(db_gb=1.0, puts_per_month=43200)
        table = render_comparison(rows)
        assert table.startswith("| placement |")
        assert table.count("\n") == len(rows) + 1
