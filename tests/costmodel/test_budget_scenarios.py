"""Figure 1's budget frontier and Table 2's scenarios."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.costmodel.budget import BudgetFrontier
from repro.costmodel.scenarios import (
    HOSPITAL,
    LABORATORY,
    M3_LARGE_PILOT_LIGHT,
    M3_MEDIUM_PILOT_LIGHT,
    recovery_cost,
    scenario_cost,
)


class TestFigure1Frontier:
    """§3's anchors: setups A, B, C of Figure 1."""

    def test_setup_a_35gb_at_72s_interval(self):
        # 35 GB synchronized once every 72 seconds = 50 syncs/hour.
        frontier = BudgetFrontier(1.0)
        assert frontier.max_db_size_gb(50.0) == pytest.approx(35.0, abs=1.0)

    def test_setup_c_4_3gb_at_4_per_minute(self):
        # 4.3 GB with four synchronizations per minute (240/hour); this
        # anchor includes the ~1.25x DB-object storage overhead.
        frontier = BudgetFrontier(1.0, storage_overhead=1.25)
        assert frontier.max_db_size_gb(240.0) == pytest.approx(4.3, abs=0.6)

    def test_setup_b_20gb_at_2_per_minute(self):
        frontier = BudgetFrontier(1.0, storage_overhead=1.25)
        assert frontier.max_db_size_gb(120.0) == pytest.approx(20.0, abs=2.0)

    def test_frontier_is_decreasing(self):
        frontier = BudgetFrontier(1.0)
        sizes = [p.max_db_size_gb for p in frontier.curve()]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_affordable_classification(self):
        frontier = BudgetFrontier(1.0)
        assert frontier.affordable(10.0, 60.0)       # well below the line
        assert not frontier.affordable(43.0, 240.0)  # well above

    def test_inverse_consistency(self):
        frontier = BudgetFrontier(1.0)
        rate = frontier.max_syncs_per_hour(20.0)
        assert frontier.max_db_size_gb(rate) == pytest.approx(20.0, rel=0.01)

    @pytest.mark.parametrize("rate", [0.5, 7.0, 49.9, 50.0, 123.456, 240.0])
    def test_round_trip_preserves_fractional_rates(self, rate):
        """Regression: ``sync_cost_per_month`` used to truncate the PUT
        count with ``int(puts)``, so the frontier's two inverse maps
        disagreed — a rate it priced as affordable could exceed the rate
        derived from the same budget.  Both directions must now bill
        fractional PUT-thousands pro rata and round-trip exactly."""
        frontier = BudgetFrontier(1.0)
        size = frontier.max_db_size_gb(rate)
        assert size > 0
        assert frontier.max_syncs_per_hour(size) == pytest.approx(
            rate, rel=1e-9)

    def test_sync_cost_is_continuous_in_the_rate(self):
        # int(puts) made the bill a step function of the rate; a 1%
        # rate bump must now always cost more, never the same.
        frontier = BudgetFrontier(1.0)
        assert frontier.sync_cost_per_month(50.5) > \
            frontier.sync_cost_per_month(50.0)

    def test_rate_saturation_at_zero_budget_left(self):
        frontier = BudgetFrontier(1.0)
        assert frontier.max_db_size_gb(100_000.0) == 0.0
        assert frontier.max_syncs_per_hour(1000.0) == 0.0

    def test_business_hours_multiplier(self):
        # §3: a 9AM-5PM business gets "roughly three times more
        # synchronizations per hour" in its active period.
        frontier = BudgetFrontier(1.0)
        assert frontier.business_hours_rate_multiplier(8.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            BudgetFrontier(0.0)
        with pytest.raises(ConfigError):
            BudgetFrontier(1.0, storage_overhead=0.5)


class TestTable2:
    """Every cell of Table 2, within a few percent of the paper."""

    @pytest.mark.parametrize(
        ("scenario", "syncs_per_minute", "paper_dollars"),
        [
            (LABORATORY, 1.0, 0.42),
            (LABORATORY, 6.0, 1.50),
            (HOSPITAL, 1.0, 20.3),
            (HOSPITAL, 6.0, 21.4),
        ],
    )
    def test_ginja_cells(self, scenario, syncs_per_minute, paper_dollars):
        cost = scenario_cost(scenario, syncs_per_minute).total
        assert cost == pytest.approx(paper_dollars, rel=0.05)

    def test_ec2_cells(self):
        assert M3_MEDIUM_PILOT_LIGHT.monthly_cost == pytest.approx(93.4, rel=0.01)
        assert M3_LARGE_PILOT_LIGHT.monthly_cost == pytest.approx(291.5, rel=0.01)

    def test_laboratory_savings_factor(self):
        """§7.2: 'between 62x to 222x smaller'."""
        best = M3_MEDIUM_PILOT_LIGHT.monthly_cost / scenario_cost(
            LABORATORY, 1.0
        ).total
        worst = M3_MEDIUM_PILOT_LIGHT.monthly_cost / scenario_cost(
            LABORATORY, 6.0
        ).total
        assert best == pytest.approx(222, rel=0.05)
        assert worst == pytest.approx(62, rel=0.05)

    def test_hospital_savings_factor(self):
        """§7.2: 'a cost 14x smaller'."""
        factor = M3_LARGE_PILOT_LIGHT.monthly_cost / scenario_cost(
            HOSPITAL, 1.0
        ).total
        assert factor == pytest.approx(14, rel=0.08)

    def test_hospital_cost_dominated_by_storage(self):
        cost = scenario_cost(HOSPITAL, 1.0)
        assert cost.db_storage > 0.9 * cost.total

    def test_laboratory_cost_dominated_by_wal_puts_at_6_syncs(self):
        cost = scenario_cost(LABORATORY, 6.0)
        assert cost.wal_put > 0.8 * cost.total


class TestRecoveryCost:
    def test_paper_recovery_figures(self):
        # §7.3: "$112.5 and $1.125 for the Hospital and the Laboratory".
        assert recovery_cost(HOSPITAL) == pytest.approx(112.5, rel=0.01)
        assert recovery_cost(LABORATORY) == pytest.approx(1.125, rel=0.01)

    def test_same_region_recovery_is_free(self):
        assert recovery_cost(HOSPITAL, same_region=True) == 0.0
