"""The interception seam Ginja mounts on."""

from __future__ import annotations

import pytest

from repro.common.clock import ManualClock
from repro.storage.interposer import FSInterceptor, InterposedFS
from repro.storage.memory import MemoryFileSystem


class RecordingInterceptor(FSInterceptor):
    """Collects the full event stream for assertions."""

    def __init__(self):
        self.events: list[tuple] = []

    def before_write(self, path, offset, data):
        self.events.append(("before_write", path, offset, bytes(data)))

    def after_write(self, path, offset, data):
        self.events.append(("after_write", path, offset, bytes(data)))

    def on_fsync(self, path):
        self.events.append(("fsync", path))

    def on_truncate(self, path, size):
        self.events.append(("truncate", path, size))

    def on_rename(self, src, dst):
        self.events.append(("rename", src, dst))

    def on_unlink(self, path):
        self.events.append(("unlink", path))


@pytest.fixture
def stack():
    inner = MemoryFileSystem()
    interceptor = RecordingInterceptor()
    return inner, interceptor, InterposedFS(inner, interceptor)


class TestInterception:
    def test_write_hooks_bracket_the_local_write(self, stack):
        inner, interceptor, fs = stack
        fs.write("wal/seg1", 8192, b"page")
        assert interceptor.events == [
            ("before_write", "wal/seg1", 8192, b"page"),
            ("after_write", "wal/seg1", 8192, b"page"),
        ]
        assert inner.read("wal/seg1", 8192, 4) == b"page"

    def test_write_lands_before_after_hook(self):
        """after_write must observe the data already durable locally —
        this is what lets Ginja 'writeLocally' then enqueue (Alg. 2)."""
        inner = MemoryFileSystem()
        seen = []

        class Peek(FSInterceptor):
            def after_write(self, path, offset, data):
                seen.append(inner.read(path, offset, len(data)))

        fs = InterposedFS(inner, Peek())
        fs.write("f", 0, b"payload")
        assert seen == [b"payload"]

    def test_fsync_truncate_rename_unlink_reported(self, stack):
        _inner, interceptor, fs = stack
        fs.write("f", 0, b"x")
        interceptor.events.clear()
        fs.fsync("f")
        fs.truncate("f", 0)
        fs.rename("f", "g")
        fs.unlink("g")
        assert [e[0] for e in interceptor.events] == [
            "fsync",
            "truncate",
            "rename",
            "unlink",
        ]

    def test_reads_pass_through_without_hooks(self, stack):
        _inner, interceptor, fs = stack
        fs.write("f", 0, b"abc")
        interceptor.events.clear()
        assert fs.read("f", 0, 3) == b"abc"
        assert fs.size("f") == 3
        assert fs.exists("f")
        assert fs.files() == ["f"]
        assert interceptor.events == []

    def test_no_interceptor_is_passthrough(self):
        fs = InterposedFS(MemoryFileSystem())
        fs.write("f", 0, b"x")
        assert fs.read_all("f") == b"x"

    def test_interceptor_swap(self, stack):
        _inner, interceptor, fs = stack
        fs.set_interceptor(None)
        fs.write("f", 0, b"x")
        assert interceptor.events == []
        fs.set_interceptor(interceptor)
        fs.write("f", 0, b"y")
        assert len(interceptor.events) == 2


class TestFuseOverhead:
    def test_per_call_overhead_slept_scaled(self):
        clock = ManualClock()
        fs = InterposedFS(
            MemoryFileSystem(),
            per_call_overhead=0.010,
            time_scale=0.1,
            clock=clock,
        )
        fs.write("f", 0, b"x")
        fs.fsync("f")
        assert clock.now() == pytest.approx(0.002)
        assert fs.calls == 2

    def test_blocking_interceptor_blocks_caller(self):
        """An after_write that refuses to return stalls the write — the
        Safety back-pressure mechanism."""
        import threading

        gate = threading.Event()

        class Blocker(FSInterceptor):
            def after_write(self, path, offset, data):
                gate.wait(timeout=5)

        fs = InterposedFS(MemoryFileSystem(), Blocker())
        done = threading.Event()

        def writer():
            fs.write("f", 0, b"x")
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert not done.wait(timeout=0.1)  # still blocked
        gate.set()
        assert done.wait(timeout=5)
        thread.join()
