"""File system substrate: memory and local-directory backends."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.clock import ManualClock
from repro.common.errors import FileSystemError
from repro.storage.disk import DiskModel, HDD_15K
from repro.storage.local import LocalDirectoryFS
from repro.storage.memory import MemoryFileSystem


@pytest.fixture(params=["memory", "local"])
def any_fs(request, tmp_path):
    if request.param == "memory":
        return MemoryFileSystem()
    return LocalDirectoryFS(tmp_path / "mount")


class TestDataPlane:
    def test_write_read_roundtrip(self, any_fs):
        any_fs.write("dir/file", 0, b"hello world")
        assert any_fs.read("dir/file", 0, 11) == b"hello world"
        assert any_fs.read("dir/file", 6, 5) == b"world"

    def test_write_at_offset_extends_with_zeros(self, any_fs):
        any_fs.write("f", 4, b"x")
        assert any_fs.size("f") == 5
        assert any_fs.read("f", 0, 5) == b"\x00\x00\x00\x00x"

    def test_overwrite_in_place(self, any_fs):
        any_fs.write("f", 0, b"aaaa")
        any_fs.write("f", 1, b"bb")
        assert any_fs.read_all("f") == b"abba"

    def test_short_read_at_eof(self, any_fs):
        any_fs.write("f", 0, b"abc")
        assert any_fs.read("f", 2, 100) == b"c"
        assert any_fs.read("f", 10, 5) == b""

    def test_read_missing_file_raises(self, any_fs):
        with pytest.raises(FileSystemError):
            any_fs.read("nope", 0, 1)

    def test_negative_offset_rejected(self, any_fs):
        with pytest.raises(FileSystemError):
            any_fs.write("f", -1, b"x")

    def test_truncate_shrinks(self, any_fs):
        any_fs.write("f", 0, b"abcdef")
        any_fs.truncate("f", 3)
        assert any_fs.read_all("f") == b"abc"

    def test_truncate_extends(self, any_fs):
        any_fs.write("f", 0, b"ab")
        any_fs.truncate("f", 4)
        assert any_fs.read_all("f") == b"ab\x00\x00"

    def test_truncate_creates_file(self, any_fs):
        any_fs.truncate("new", 8)
        assert any_fs.size("new") == 8

    def test_write_all_replaces(self, any_fs):
        any_fs.write("f", 0, b"long old content")
        any_fs.write_all("f", b"new")
        assert any_fs.read_all("f") == b"new"

    def test_fsync_existing_file(self, any_fs):
        any_fs.write("f", 0, b"x")
        any_fs.fsync("f")  # must not raise

    def test_fsync_missing_file_raises(self, any_fs):
        with pytest.raises(FileSystemError):
            any_fs.fsync("nope")


class TestNamespace:
    def test_rename(self, any_fs):
        any_fs.write("a", 0, b"data")
        any_fs.rename("a", "sub/b")
        assert not any_fs.exists("a")
        assert any_fs.read_all("sub/b") == b"data"

    def test_rename_replaces_destination(self, any_fs):
        any_fs.write("a", 0, b"new")
        any_fs.write("b", 0, b"old")
        any_fs.rename("a", "b")
        assert any_fs.read_all("b") == b"new"

    def test_rename_missing_raises(self, any_fs):
        with pytest.raises(FileSystemError):
            any_fs.rename("nope", "x")

    def test_unlink(self, any_fs):
        any_fs.write("f", 0, b"x")
        any_fs.unlink("f")
        assert not any_fs.exists("f")

    def test_unlink_missing_raises(self, any_fs):
        with pytest.raises(FileSystemError):
            any_fs.unlink("nope")

    def test_files_listing_sorted_with_prefix(self, any_fs):
        for path in ("pg_xlog/2", "pg_xlog/1", "base/t1", "pg_control"):
            any_fs.write(path, 0, b".")
        assert any_fs.files("pg_xlog/") == ["pg_xlog/1", "pg_xlog/2"]
        assert any_fs.files() == sorted(any_fs.files())

    def test_require(self, any_fs):
        any_fs.write("f", 0, b"x")
        any_fs.require("f")
        with pytest.raises(FileSystemError):
            any_fs.require("g")


class TestLocalFSContainment:
    def test_path_escape_rejected(self, tmp_path):
        fs = LocalDirectoryFS(tmp_path / "mount")
        with pytest.raises(FileSystemError):
            fs.write("../escape", 0, b"x")


class TestDiskModel:
    def test_memory_fs_accounts_modeled_latency_without_sleeping(self):
        clock = ManualClock()
        fs = MemoryFileSystem(disk=HDD_15K, time_scale=0.0, clock=clock)
        fs.write("f", 0, b"x" * 8192)
        fs.fsync("f")
        assert fs.modeled_io_seconds > HDD_15K.fsync_latency * 0.99
        assert clock.now() == 0.0

    def test_scaled_sleep(self):
        clock = ManualClock()
        disk = DiskModel(fsync_latency=1.0)
        fs = MemoryFileSystem(disk=disk, time_scale=0.25, clock=clock)
        fs.write("f", 0, b"x")
        fs.fsync("f")
        assert clock.now() == pytest.approx(0.25)

    def test_latency_formula(self):
        disk = DiskModel(write_base=0.001, write_bytes_per_sec=1e6)
        assert disk.write_latency(1_000_000) == pytest.approx(1.001)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=300),
            st.binary(min_size=1, max_size=64),
        ),
        max_size=30,
    )
)
def test_memory_fs_matches_bytearray_model(writes):
    """Property: a sequence of offset writes equals the bytearray model."""
    fs = MemoryFileSystem()
    model = bytearray()
    for offset, data in writes:
        fs.write("f", offset, data)
        end = offset + len(data)
        if len(model) < end:
            model.extend(b"\x00" * (end - len(model)))
        model[offset:end] = data
    if writes:
        assert fs.read_all("f") == bytes(model)
