"""Stack builder and experiment runners."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.cloud.latency import LOCAL_LATENCY, SAME_REGION_LATENCY, WAN_LATENCY
from repro.core.config import GinjaConfig
from repro.harness import (
    StackConfig,
    build_stack,
    measure_recovery,
    run_tpcc,
)
from repro.storage.disk import NO_DISK_LATENCY
from repro.workloads.tpcc import TPCCConfig

FAST_TPCC = TPCCConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=5,
    items=50,
    stock_per_warehouse=50,
    initial_orders_per_district=4,
)


def fast_config(**overrides):
    defaults = dict(
        fs_mode="native",
        disk=NO_DISK_LATENCY,
        cloud_latency=LOCAL_LATENCY,
        cloud_time_scale=0.0,
        wal_segment_size=1 * MiB,
        ginja=GinjaConfig(batch=50, safety=500, batch_timeout=0.05,
                          safety_timeout=5.0),
    )
    defaults.update(overrides)
    return StackConfig(**defaults)


class TestBuildStack:
    def test_native_mode_has_no_cloud(self):
        stack = build_stack(fast_config(fs_mode="native"))
        assert stack.cloud is None and stack.ginja is None
        assert stack.fs is stack.inner_fs

    def test_fuse_mode_wraps_without_interceptor(self):
        stack = build_stack(fast_config(fs_mode="fuse"))
        assert stack.ginja is None
        assert stack.fs is not stack.inner_fs

    def test_ginja_mode_builds_everything(self):
        stack = build_stack(fast_config(fs_mode="ginja"))
        assert stack.cloud is not None and stack.ginja is not None
        db = stack.create_db()
        db.put("t", "k", b"v")
        assert stack.ginja.drain(timeout=10.0)
        assert len(stack.cloud.list()) > 0
        stack.shutdown()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            build_stack(fast_config(fs_mode="zfs"))

    def test_unknown_dbms_rejected(self):
        with pytest.raises(ConfigError):
            build_stack(fast_config(dbms="oracle")).create_db()

    def test_overrides_shortcut(self):
        stack = build_stack(fs_mode="native", disk=NO_DISK_LATENCY)
        assert stack.config.fs_mode == "native"

    def test_config_and_overrides_conflict(self):
        with pytest.raises(ConfigError):
            build_stack(fast_config(), fs_mode="native")


class TestPlacementStack:
    PLACEMENT = GinjaConfig(
        batch=50, safety=500, batch_timeout=0.05, safety_timeout=5.0,
        providers=3, placement="wal=mirror-2,db=stripe-2-3,default=mirror-2",
    )

    def test_ginja_mode_builds_a_placement_store(self):
        from repro.placement import PlacementStore

        stack = build_stack(fast_config(fs_mode="ginja",
                                        ginja=self.PLACEMENT))
        assert isinstance(stack.cloud, PlacementStore)
        assert stack.owned_stores == [stack.cloud]
        db = stack.create_db()
        db.put("t", "k", b"v")
        assert stack.ginja.drain(timeout=10.0)
        db.close()
        stack.stop()

    @pytest.mark.parametrize("teardown", ["stop", "crash"])
    def test_teardown_closes_the_owned_store(self, teardown):
        from repro.common.errors import CloudUnavailable

        stack = build_stack(fast_config(fs_mode="ginja",
                                        ginja=self.PLACEMENT))
        db = stack.create_db()
        db.put("t", "k", b"v")
        if teardown == "stop":
            db.close()
        getattr(stack, teardown)()
        with pytest.raises(CloudUnavailable):
            stack.cloud.get("anything")
        # Idempotent: a crash after a stop (or vice versa) must not
        # trip over the already-closed pool.
        getattr(stack, teardown)()

    def test_single_provider_cloud_is_not_owned(self):
        stack = build_stack(fast_config(fs_mode="ginja"))
        assert stack.owned_stores == []
        stack.stop()


class TestRunTpcc:
    @pytest.mark.parametrize("mode", ["native", "fuse", "ginja"])
    def test_run_produces_report(self, mode):
        stack = build_stack(fast_config(fs_mode=mode))
        report = run_tpcc(stack, duration=0.6, warmup=0.1, terminals=2,
                          tpcc_config=FAST_TPCC)
        assert report.tpm_total > 0
        assert report.engine_commits > 0
        assert not report.tpcc.errors
        if mode == "ginja":
            assert report.cloud_puts > 0
            assert report.ginja_stats["wal_objects"] > 0

    def test_mysql_stack_runs(self):
        stack = build_stack(fast_config(dbms="mysql", fs_mode="ginja",
                                        wal_segment_size=1 * MiB))
        report = run_tpcc(stack, duration=0.6, warmup=0.1, terminals=2,
                          tpcc_config=FAST_TPCC)
        assert report.tpm_total > 0
        assert not report.tpcc.errors

    def test_mid_run_checkpoint(self):
        stack = build_stack(fast_config(fs_mode="ginja"))
        report = run_tpcc(stack, duration=0.8, warmup=0.1, terminals=2,
                          tpcc_config=FAST_TPCC, checkpoint_mid_run=True)
        assert report.engine_checkpoints >= 1


class TestMeasureRecovery:
    def _populated_bucket(self):
        stack = build_stack(fast_config(fs_mode="ginja"))
        run_tpcc(stack, duration=0.6, warmup=0.1, terminals=2,
                 tpcc_config=FAST_TPCC)
        return stack.cloud.backend, stack.config

    def test_recovery_reports_time_and_rows(self):
        bucket, config = self._populated_bucket()
        report = measure_recovery(
            bucket, config.profile,
            ginja_config=config.ginja,
            engine_config=config.engine_config(),
            network=WAN_LATENCY,
        )
        assert report.total_seconds > 0
        assert report.bytes_downloaded > 0
        assert report.recovered_rows > 0

    def test_same_region_faster_than_wan(self):
        """Figure 7's second series: recovery in an EC2 VM colocated with
        the bucket is markedly faster than on-premises over WAN."""
        bucket, config = self._populated_bucket()
        wan = measure_recovery(bucket, config.profile,
                               ginja_config=config.ginja,
                               engine_config=config.engine_config(),
                               network=WAN_LATENCY)
        ec2 = measure_recovery(bucket, config.profile,
                               ginja_config=config.ginja,
                               engine_config=config.engine_config(),
                               network=SAME_REGION_LATENCY)
        assert ec2.modeled_network_seconds < wan.modeled_network_seconds


class TestStackCrash:
    def test_ginja_crash_leaves_recoverable_disaster_image(self):
        from repro.core.ginja import Ginja
        from repro.db.engine import MiniDB
        from repro.storage.memory import MemoryFileSystem

        stack = build_stack(fast_config(fs_mode="ginja"))
        db = stack.create_db()
        for i in range(30):
            db.put("t", f"k{i}", f"v{i}".encode())
        stack.crash()
        assert stack.ginja is not None and not stack.ginja.running
        stack.crash()  # idempotent

        ginja, _report = Ginja.recover(
            stack.cloud, MemoryFileSystem(), stack.config.profile,
            stack.config.ginja,
        )
        recovered_db = MiniDB.open(ginja.fs, stack.config.profile,
                                   stack.config.engine_config())
        recovered = sum(
            1 for i in range(30)
            if recovered_db.get("t", f"k{i}") == f"v{i}".encode()
        )
        bound = stack.config.ginja.safety + stack.config.ginja.batch + 1
        assert 30 - recovered <= bound
        ginja.stop(drain_timeout=5.0)

    def test_crash_is_noop_for_unprotected_modes(self):
        build_stack(fast_config(fs_mode="native")).crash()
        build_stack(fast_config(fs_mode="fuse")).crash()
