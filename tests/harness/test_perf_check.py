"""The perf CLI's regression gate — band, parallel floor, 1-CPU floor."""

from __future__ import annotations

from benchmarks.perf.harness import SCHEMA
from benchmarks.perf.run import check


def _report(cpus: int, speedup: float, scale: float = 1.0, **entry) -> dict:
    return {
        "schema": SCHEMA,
        "machine": {"cpus": cpus},
        "scale": scale,
        "benchmarks": {
            "pipeline_submit_unlock": {"speedup": speedup, **entry},
        },
    }


class TestSingleCoreFloor:
    def test_below_floor_fails_on_one_cpu(self):
        committed = _report(1, 1.1, parallel=True, floor_1cpu=1.0)
        fresh = _report(1, 0.96, parallel=True, floor_1cpu=1.0)
        failures = check(fresh, committed, band=0.4)
        assert any("single-core floor" in f for f in failures)

    def test_floor_ignores_the_parallel_exemption(self):
        """Committed report from a many-core machine, fresh run on one
        CPU: the parallel flag's floor-only leniency (a generous band)
        must not excuse dropping below the 1-CPU floor."""
        committed = _report(8, 1.4, parallel=True, floor_1cpu=1.0)
        fresh = _report(1, 0.97, parallel=True, floor_1cpu=1.0)
        failures = check(fresh, committed, band=0.4)
        assert any("single-core floor" in f for f in failures)

    def test_at_or_above_floor_passes(self):
        committed = _report(1, 1.05, parallel=True, floor_1cpu=1.0)
        fresh = _report(1, 1.01, parallel=True, floor_1cpu=1.0)
        assert check(fresh, committed, band=0.4) == []

    def test_floor_not_applied_on_multicore_runs(self):
        """With >1 CPU the cross-machine parallel floor still governs;
        the 1-CPU floor stays dormant."""
        committed = _report(1, 1.0, parallel=True, floor_1cpu=1.0)
        fresh = _report(4, 0.9, parallel=True, floor_1cpu=1.0)
        # 0.9 >= 1.0 * (1 - 0.4): within the cross-machine floor band.
        assert check(fresh, committed, band=0.4) == []

    def test_floor_not_applied_to_scaled_down_smoke_runs(self):
        """The floor is a claim about the canonical workload; a 1%-scale
        smoke run is all startup overhead and is not gated."""
        committed = _report(1, 1.1, parallel=True, floor_1cpu=1.0)
        fresh = _report(1, 0.92, scale=0.01, parallel=True, floor_1cpu=1.0)
        assert check(fresh, committed, band=0.4) == []

    def test_benchmarks_without_floor_keep_old_semantics(self):
        committed = _report(1, 1.1, parallel=True)
        fresh = _report(1, 0.95, parallel=True)
        failures = check(fresh, committed, band=0.4)
        assert failures == []  # within the band, no floor declared


class TestBand:
    def test_band_still_catches_collapsed_ratio(self):
        committed = _report(2, 2.0)
        fresh = _report(2, 1.0)
        failures = check(fresh, committed, band=0.4)
        assert any("outside" in f for f in failures)

    def test_missing_benchmark_reported(self):
        committed = _report(2, 2.0)
        fresh = {"schema": SCHEMA, "machine": {"cpus": 2}, "benchmarks": {}}
        failures = check(fresh, committed, band=0.4)
        assert any("missing" in f for f in failures)
