"""The ginja-repro command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCost:
    def test_cost_prints_breakdown(self, capsys):
        assert main(["cost", "--db-gb", "10", "--updates-per-minute", "100",
                     "--batch", "100"]) == 0
        out = capsys.readouterr().out
        assert "C_Total" in out
        assert "C_WAL_PUT" in out

    def test_cost_with_snapshots(self, capsys):
        assert main(["cost", "--snapshots", "3"]) == 0
        assert "PITR x3" in capsys.readouterr().out

    def test_other_providers(self, capsys):
        for provider in ("azure", "gcs"):
            assert main(["cost", "--provider", provider]) == 0


class TestFrontier:
    def test_frontier_prints_curve(self, capsys):
        assert main(["frontier", "--budget", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "capacity frontier" in out
        assert "syncs/hour" in out


class TestDemo:
    @pytest.mark.parametrize("profile", ["postgres", "mysql"])
    def test_demo_in_memory(self, capsys, profile):
        assert main(["demo", "--rows", "30", "--profile", profile,
                     "--segment-size", "256KB" if profile == "postgres"
                     else "64KB"]) == 0
        out = capsys.readouterr().out
        assert "recovered 30/30 rows" in out

    def test_demo_with_directory_bucket(self, capsys, tmp_path):
        bucket = tmp_path / "bucket"
        assert main(["demo", "--rows", "20", "--bucket-dir", str(bucket),
                     "--segment-size", "256KB"]) == 0
        assert any(bucket.iterdir())

    def test_demo_refuses_dirty_bucket(self, capsys, tmp_path):
        bucket = tmp_path / "bucket"
        bucket.mkdir()
        (bucket / "WAL%2F000000000000_x_0").write_bytes(b"junk")
        assert main(["demo", "--bucket-dir", str(bucket)]) == 2

    def test_demo_trace_dumps_per_verb_summary(self, capsys):
        """--trace prints the event-sourced transport summary."""
        assert main(["demo", "--rows", "30", "--trace",
                     "--segment-size", "256KB"]) == 0
        out = capsys.readouterr().out
        assert "cloud trace (from events)" in out
        assert "PUT" in out
        assert "mean lat" in out


class TestRecoverVerify:
    @pytest.fixture
    def populated_bucket(self, tmp_path, capsys):
        bucket = tmp_path / "bucket"
        assert main(["demo", "--rows", "25", "--bucket-dir", str(bucket),
                     "--segment-size", "256KB"]) == 0
        capsys.readouterr()
        return bucket

    def test_recover_into_directory(self, populated_bucket, tmp_path, capsys):
        data = tmp_path / "restored"
        assert main(["recover", str(populated_bucket), str(data)]) == 0
        out = capsys.readouterr().out
        assert "restored" in out
        assert (data / "global" / "pg_control").exists()

    def test_recover_refuses_nonempty_target(self, populated_bucket,
                                             tmp_path, capsys):
        data = tmp_path / "restored"
        data.mkdir()
        (data / "existing").write_bytes(b"x")
        assert main(["recover", str(populated_bucket), str(data)]) == 2

    def test_recover_refuses_empty_bucket(self, tmp_path, capsys):
        assert main(["recover", str(tmp_path / "empty"),
                     str(tmp_path / "data")]) == 2

    def test_ls_inventory(self, populated_bucket, capsys):
        assert main(["ls", str(populated_bucket)]) == 0
        out = capsys.readouterr().out
        assert "RECOVERABLE" in out
        assert "WAL:" in out and "DB:" in out

    def test_ls_empty_bucket_not_recoverable(self, tmp_path, capsys):
        assert main(["ls", str(tmp_path / "empty")]) == 1
        assert "NOT RECOVERABLE" in capsys.readouterr().out

    def test_verify_passes_on_good_backup(self, populated_bucket, capsys):
        assert main(["verify", str(populated_bucket),
                     "--segment-size", "256KB"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_verify_fails_on_corruption(self, populated_bucket, capsys):
        for obj in populated_bucket.iterdir():
            raw = bytearray(obj.read_bytes())
            if raw:
                raw[len(raw) // 2] ^= 0xFF
                obj.write_bytes(bytes(raw))
        assert main(["verify", str(populated_bucket),
                     "--segment-size", "256KB"]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestFsck:
    @pytest.fixture
    def populated_bucket(self, tmp_path, capsys):
        bucket = tmp_path / "bucket"
        assert main(["demo", "--rows", "25", "--bucket-dir", str(bucket),
                     "--segment-size", "256KB"]) == 0
        capsys.readouterr()
        return bucket

    @staticmethod
    def _wal_files(bucket):
        return sorted(p for p in bucket.iterdir()
                      if p.name.startswith("WAL%2F"))

    def test_clean_bucket_exits_zero(self, populated_bucket, capsys):
        assert main(["fsck", str(populated_bucket)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_exit_code_counts_violations(self, populated_bucket, capsys):
        wal = self._wal_files(populated_bucket)
        assert len(wal) >= 2
        wal[0].unlink()  # every later WAL object is now orphaned
        code = main(["fsck", str(populated_bucket)])
        out = capsys.readouterr().out
        assert code == len(wal)  # 1 gap + (n-1) orphans
        assert "wal-orphan" in out and "wal-gap" in out

    def test_repair_converges_and_recovery_works(self, populated_bucket,
                                                 tmp_path, capsys):
        import json as json_module
        self._wal_files(populated_bucket)[0].unlink()
        assert main(["fsck", str(populated_bucket), "--repair",
                     "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["audit"]["ok"] is True
        assert payload["repair"]["deleted"]
        # A second audit agrees the bucket is clean...
        assert main(["fsck", str(populated_bucket), "--json"]) == 0
        capsys.readouterr()
        # ...and the repaired bucket restores and verifies.
        assert main(["recover", str(populated_bucket),
                     str(tmp_path / "restored")]) == 0
        assert main(["verify", str(populated_bucket),
                     "--segment-size", "256KB"]) == 0

    def test_json_reports_violations(self, populated_bucket, capsys):
        import json as json_module
        self._wal_files(populated_bucket)[0].unlink()
        code = main(["fsck", str(populated_bucket), "--json"])
        payload = json_module.loads(capsys.readouterr().out)
        assert code == payload["audit"]["violation_count"] > 0
        assert payload["audit"]["orphans"]
        assert "repair" not in payload


class TestChaos:
    ARGS = ["chaos", "--scenario", "baseline", "--crash-point", "pre-put",
            "--crash-point", "during-gc", "--seeds", "2", "--jobs", "2"]

    def test_small_campaign_green(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "0 failing" in out and "during-gc" in out

    def test_report_artifact_is_deterministic(self, tmp_path, capsys):
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.ARGS + ["--out", str(out_a)]) == 0
        assert main(self.ARGS + ["--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_mutation_check_detects(self, capsys):
        assert main(["chaos", "--mutation-check"]) == 0
        assert "oracle has teeth" in capsys.readouterr().out

    def test_list_scenarios_and_points(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "blackout" in out and "during-gc" in out

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2

    def test_dump_buckets_then_fsck_converges(self, tmp_path, capsys):
        """The CI chaos-smoke contract: every dumped disaster image is
        repairable, and a repaired image audits clean."""
        images = tmp_path / "images"
        assert main(["chaos", "--scenario", "baseline",
                     "--crash-point", "mid-batch", "--seeds", "1",
                     "--dump-buckets", str(images)]) == 0
        capsys.readouterr()
        dumped = sorted(p for p in images.iterdir() if p.is_dir())
        assert dumped, "no disaster images written"
        for image in dumped:
            assert main(["fsck", str(image), "--repair"]) == 0
            assert main(["fsck", str(image)]) == 0
            capsys.readouterr()
