"""The §2/§9 baseline DR mechanisms."""

from __future__ import annotations

import pytest

from repro.baselines import (
    ArchiveRecovery,
    ContinuousArchiver,
    SnapshotBackup,
    restore_latest_snapshot,
)
from repro.common.errors import ConfigError, RecoveryError
from repro.common.units import KiB
from repro.cloud.memory import InMemoryObjectStore
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.storage.interposer import InterposedFS
from repro.storage.memory import MemoryFileSystem

SEG = 32 * KiB  # tiny segments so archiving triggers fast
ENGINE = EngineConfig(wal_segment_size=SEG, auto_checkpoint=False)


def archived_stack():
    inner = MemoryFileSystem()
    cloud = InMemoryObjectStore()
    fs = InterposedFS(inner, None)
    db = MiniDB.create(fs, POSTGRES_PROFILE, ENGINE)
    archiver = ContinuousArchiver(inner, cloud, POSTGRES_PROFILE)
    fs.set_interceptor(archiver)
    return inner, cloud, fs, db, archiver


class TestContinuousArchiver:
    def test_requires_append_mode_wal(self):
        with pytest.raises(ConfigError):
            ContinuousArchiver(MemoryFileSystem(), InMemoryObjectStore(),
                               MYSQL_PROFILE)

    def test_completed_segments_shipped(self):
        _inner, cloud, _fs, db, archiver = archived_stack()
        # Write enough WAL to roll into several segments.
        for i in range(80):
            db.put("t", f"k{i}", b"x" * 500)
        assert archiver.segments_archived >= 1
        assert len(cloud.list("ARCHIVE/")) == archiver.segments_archived

    def test_in_progress_segment_not_shipped(self):
        _inner, cloud, _fs, db, archiver = archived_stack()
        db.put("t", "k", b"v")  # a few bytes into segment 0
        assert archiver.segments_archived == 0
        assert cloud.list("ARCHIVE/") == []

    def test_base_backup_and_restore(self):
        _inner, cloud, _fs, db, archiver = archived_stack()
        for i in range(80):
            db.put("t", f"k{i}", b"x" * 500)
        db.checkpoint()
        archiver.base_backup()
        # More traffic after the backup; completed segments still ship.
        for i in range(80, 160):
            db.put("t", f"k{i}", b"x" * 500)
        db.crash()
        target = MemoryFileSystem()
        report = ArchiveRecovery.restore(cloud, target, POSTGRES_PROFILE)
        assert report.base_backup_seq == 1
        assert report.segments_replayed >= 1
        recovered = MiniDB.open(target, POSTGRES_PROFILE, ENGINE)
        # Everything up to the last *archived* segment came back; the
        # in-progress segment's commits are the baseline's loss window.
        assert recovered.get("t", "k0") == b"x" * 500
        lost = sum(
            1 for i in range(160)
            if recovered.get("t", f"k{i}") is None
        )
        assert 0 < lost < 160

    def test_restore_without_backup_raises(self):
        with pytest.raises(RecoveryError):
            ArchiveRecovery.restore(InMemoryObjectStore(), MemoryFileSystem(),
                                    POSTGRES_PROFILE)

    def test_gap_in_archive_stops_replay(self):
        _inner, cloud, _fs, db, archiver = archived_stack()
        db.checkpoint()
        archiver.base_backup()
        for i in range(200):
            db.put("t", f"k{i}", b"x" * 500)
        keys = sorted(info.key for info in cloud.list("ARCHIVE/"))
        assert len(keys) >= 3
        cloud.delete(keys[1])  # lose the second archived segment
        target = MemoryFileSystem()
        report = ArchiveRecovery.restore(cloud, target, POSTGRES_PROFILE)
        assert report.segments_replayed == 1
        assert report.stale_segment_keys


class TestSnapshotBackup:
    def _db(self):
        fs = MemoryFileSystem()
        return fs, MiniDB.create(fs, POSTGRES_PROFILE, ENGINE)

    def test_snapshot_restore_roundtrip(self):
        fs, db = self._db()
        for i in range(20):
            db.put("t", f"k{i}", b"v")
        cloud = InMemoryObjectStore()
        backup = SnapshotBackup(fs, cloud)
        backup.take_snapshot()
        db.crash()
        target = MemoryFileSystem()
        restored = restore_latest_snapshot(cloud, target)
        assert restored > 0
        recovered = MiniDB.open(target, POSTGRES_PROFILE, ENGINE)
        for i in range(20):
            assert recovered.get("t", f"k{i}") == b"v"

    def test_updates_after_snapshot_are_lost(self):
        fs, db = self._db()
        db.put("t", "before", b"1")
        cloud = InMemoryObjectStore()
        SnapshotBackup(fs, cloud).take_snapshot()
        db.put("t", "after", b"2")
        target = MemoryFileSystem()
        restore_latest_snapshot(cloud, target)
        recovered = MiniDB.open(target, POSTGRES_PROFILE, ENGINE)
        assert recovered.get("t", "before") == b"1"
        assert recovered.get("t", "after") is None  # Backup&Restore's RPO

    def test_rotation_keeps_n(self):
        fs, _db = self._db()
        cloud = InMemoryObjectStore()
        backup = SnapshotBackup(fs, cloud, keep=2)
        for _ in range(5):
            backup.take_snapshot()
        assert len(cloud.list("SNAP/")) == 2

    def test_latest_snapshot_wins(self):
        fs, db = self._db()
        cloud = InMemoryObjectStore()
        backup = SnapshotBackup(fs, cloud)
        db.put("t", "k", b"old")
        backup.take_snapshot()
        db.put("t", "k", b"new")
        backup.take_snapshot()
        target = MemoryFileSystem()
        restore_latest_snapshot(cloud, target)
        recovered = MiniDB.open(target, POSTGRES_PROFILE, ENGINE)
        assert recovered.get("t", "k") == b"new"

    def test_keep_validated(self):
        with pytest.raises(ConfigError):
            SnapshotBackup(MemoryFileSystem(), InMemoryObjectStore(), keep=0)

    def test_restore_empty_bucket_raises(self):
        with pytest.raises(RecoveryError):
            restore_latest_snapshot(InMemoryObjectStore(), MemoryFileSystem())
