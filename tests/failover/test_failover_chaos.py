"""Failover under overlapping faults.

The nastiest §6-style drill: the primary dies *mid-checkpoint* (its
last DB object half-registered, GC not yet run) while a cloud outage
covers the standby's first detection attempt.  The coordinator must
fail its first takeover cleanly (the bucket is unreachable), then
succeed once the outage lifts — recovering a consistent database with
loss inside the analytic bound.
"""

from __future__ import annotations

from repro.common.clock import ManualClock
from repro.common.units import KiB
from repro.chaos.crashpoints import CRASH_POINTS, CrashPointInjector
from repro.cloud.faults import FaultPolicy, Outage
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.failover import FailoverCoordinator, FailureDetector, HeartbeatWriter
from repro.storage.memory import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)
ROWS = 80


def test_failover_rides_out_outage_after_crash_mid_checkpoint():
    clock = ManualClock()
    backend = InMemoryObjectStore()
    # The outage starts the moment the primary dies (below) and lasts 10
    # virtual seconds — long enough to cover the standby's first
    # detection/recovery attempt at a 2-second poll interval.
    faults = FaultPolicy()
    cloud = SimulatedCloud(backend=backend, faults=faults,
                           time_scale=1.0, clock=clock, seed=5)
    config = GinjaConfig(batch=5, safety=20, batch_timeout=0.02,
                         safety_timeout=5.0, seed=5)

    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    primary = Ginja(disk, cloud, POSTGRES_PROFILE, config, clock=clock)
    primary.start(mode="boot")
    heartbeat = HeartbeatWriter(cloud)
    heartbeat.beat_once()

    db = MiniDB.open(primary.fs, POSTGRES_PROFILE, ENGINE)
    committed = {}
    for index in range(ROWS):
        key = f"k{index}"
        db.put("t", key, f"v{index}".encode())
        committed[key] = f"v{index}".encode()
        if index % 10 == 0:
            heartbeat.beat_once()

    # Kill the primary the instant the checkpoint's first DB object
    # lands — the upload pipeline dies with GC still pending.
    injector = CrashPointInjector(
        CRASH_POINTS["during-checkpoint"], backend.snapshot
    ).attach(primary.bus)
    db.checkpoint()
    assert injector.wait(10.0), "checkpoint upload never started"
    primary.crash()
    assert not primary.running

    # The outage begins with the disaster and hides the bucket from the
    # standby's first detection polls.
    now = clock.now()
    faults.outages.append(Outage(start=now, end=now + 10.0))

    standby = FailoverCoordinator(
        cloud, POSTGRES_PROFILE, ginja_config=config,
        engine_config=ENGINE,
        detector=FailureDetector(cloud, misses_allowed=3),
        poll_interval=2.0, clock=clock,
    )
    first = standby.run()
    assert not first.failed_over
    assert first.error is not None  # declared death, but bucket dark
    assert first.polls >= 3

    # Outage lifts; a fresh attempt promotes the standby.
    clock.advance(12.0)
    second = FailoverCoordinator(
        cloud, POSTGRES_PROFILE, ginja_config=config,
        engine_config=ENGINE,
        detector=FailureDetector(cloud, misses_allowed=3),
        poll_interval=2.0, clock=clock,
    ).run()
    assert second.failed_over, second.error
    assert second.db is not None

    recovered = {
        key: second.db.get("t", key)
        for key in committed if second.db.get("t", key) is not None
    }
    phantoms = [key for key, value in recovered.items()
                if value != committed[key]]
    assert phantoms == []
    lost = len(committed) - len(recovered)
    assert lost <= config.safety + config.batch + 1, (
        f"lost {lost} rows, beyond S+B+1"
    )
    second.ginja.stop(drain_timeout=5.0)
