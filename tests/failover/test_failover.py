"""Heartbeats, failure detection and failover orchestration."""

from __future__ import annotations

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.cloud.faults import FaultPolicy
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.failover import (
    FailoverCoordinator,
    FailureDetector,
    HeartbeatWriter,
)
from repro.failover.heartbeat import HEARTBEAT_KEY, read_heartbeat
from repro.storage.memory import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)
CONFIG = GinjaConfig(batch=5, safety=50, batch_timeout=0.02,
                     safety_timeout=5.0)


class TestHeartbeat:
    def test_beat_bumps_sequence(self):
        cloud = InMemoryObjectStore()
        writer = HeartbeatWriter(cloud)
        assert writer.beat_once() == 1
        assert writer.beat_once() == 2
        assert read_heartbeat(cloud) == 2

    def test_missing_heartbeat_reads_none(self):
        assert read_heartbeat(InMemoryObjectStore()) is None

    def test_garbled_heartbeat_reads_none(self):
        cloud = InMemoryObjectStore()
        cloud.put(HEARTBEAT_KEY, b"not-a-sequence")
        assert read_heartbeat(cloud) is None

    def test_heartbeat_key_invisible_to_ginja_recovery(self):
        """The _meta/ namespace never parses as a Ginja object."""
        from repro.core.data_model import parse_any
        assert parse_any(HEARTBEAT_KEY) is None

    def test_writer_thread_beats(self):
        import time
        cloud = InMemoryObjectStore()
        writer = HeartbeatWriter(cloud, interval=0.02)
        writer.start()
        time.sleep(0.15)
        writer.stop()
        assert writer.beats_sent >= 3

    def test_interval_validated(self):
        with pytest.raises(ConfigError):
            HeartbeatWriter(InMemoryObjectStore(), interval=0)


class TestFailureDetector:
    def test_fresh_beats_keep_primary_alive(self):
        cloud = InMemoryObjectStore()
        writer = HeartbeatWriter(cloud)
        detector = FailureDetector(cloud, misses_allowed=2)
        for _ in range(5):
            writer.beat_once()
            assert detector.poll() is False
        assert detector.consecutive_misses == 0

    def test_stalled_sequence_detected_after_hysteresis(self):
        cloud = InMemoryObjectStore()
        writer = HeartbeatWriter(cloud)
        writer.beat_once()
        detector = FailureDetector(cloud, misses_allowed=3)
        assert detector.poll() is False  # first read establishes baseline
        assert detector.poll() is False  # miss 1 (no progress)
        assert detector.poll() is False  # miss 2
        assert detector.poll() is True   # miss 3 -> declared failed

    def test_progress_resets_misses(self):
        cloud = InMemoryObjectStore()
        writer = HeartbeatWriter(cloud)
        writer.beat_once()
        detector = FailureDetector(cloud, misses_allowed=2)
        detector.poll()
        detector.poll()  # miss 1
        writer.beat_once()
        assert detector.poll() is False
        assert detector.consecutive_misses == 0

    def test_unreachable_bucket_counts_as_miss(self):
        faults = FaultPolicy()
        cloud = SimulatedCloud(time_scale=0.0, faults=faults)
        detector = FailureDetector(cloud, misses_allowed=1)
        faults.fail_next(5)
        assert detector.poll() is True

    def test_validation(self):
        with pytest.raises(ConfigError):
            FailureDetector(InMemoryObjectStore(), misses_allowed=0)


class TestFailoverCoordinator:
    def _protected_primary(self):
        bucket = InMemoryObjectStore()
        disk = MemoryFileSystem()
        MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
        ginja = Ginja(disk, bucket, POSTGRES_PROFILE, CONFIG)
        ginja.start(mode="boot")
        db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
        writer = HeartbeatWriter(bucket)
        return bucket, ginja, db, writer

    def test_full_failover_story(self):
        bucket, ginja, db, writer = self._protected_primary()
        for i in range(25):
            db.put("t", f"k{i}", b"v")
        ginja.drain(timeout=10.0)
        writer.beat_once()
        ginja.stop()  # the primary dies; heartbeats stop

        promoted = []
        coordinator = FailoverCoordinator(
            bucket, POSTGRES_PROFILE,
            ginja_config=CONFIG, engine_config=ENGINE,
            detector=FailureDetector(bucket, misses_allowed=2),
            poll_interval=0.01,
            on_promote=lambda new_db, _g: promoted.append(new_db),
            clock=ManualClock(),
        )
        result = coordinator.run()
        assert result.failed_over
        assert result.recovered_rows >= 25
        assert promoted and promoted[0] is result.db
        for i in range(25):
            assert result.db.get("t", f"k{i}") == b"v"
        # The promoted standby is itself protected: new commits flow.
        result.db.put("t", "post-failover", b"new")
        assert result.ginja.drain(timeout=10.0)
        result.ginja.stop()

    def test_healthy_primary_never_fails_over(self):
        bucket, ginja, db, writer = self._protected_primary()
        db.put("t", "k", b"v")
        ginja.drain(timeout=10.0)
        detector = FailureDetector(bucket, misses_allowed=3)
        coordinator = FailoverCoordinator(
            bucket, POSTGRES_PROFILE, ginja_config=CONFIG,
            engine_config=ENGINE, detector=detector,
            poll_interval=0.0, clock=ManualClock(),
        )
        # Keep beating while polling: detection must not fire.
        for _ in range(4):
            writer.beat_once()
            result = coordinator.run(max_polls=1)
            assert not result.failed_over
        ginja.stop()

    def test_poisoned_promotion_leaks_no_ginja_threads(self, monkeypatch):
        """Regression: if the DBMS's own crash recovery fails after
        Ginja.recover() already started the standby's pipelines, the
        coordinator must crash that Ginja instance — before the fix its
        aggregator/uploader/checkpointer threads leaked on the standby."""
        import threading

        from repro.common.errors import GinjaError
        import repro.failover.coordinator as coordinator_mod

        bucket, ginja, db, writer = self._protected_primary()
        db.put("t", "k", b"v")
        ginja.drain(timeout=10.0)
        ginja.stop()

        class PoisonedDB:
            @staticmethod
            def open(fs, profile, engine_config=None):
                raise GinjaError("crash recovery found torn pages")

        monkeypatch.setattr(coordinator_mod, "MiniDB", PoisonedDB)
        coordinator = FailoverCoordinator(
            bucket, POSTGRES_PROFILE,
            ginja_config=CONFIG, engine_config=ENGINE,
            detector=FailureDetector(bucket, misses_allowed=1),
            poll_interval=0.0, clock=ManualClock(),
        )
        result = coordinator.run()
        assert not result.failed_over
        assert "torn pages" in (result.error or "")
        leaked = [t.name for t in threading.enumerate()
                  if t.name.startswith("ginja-")]
        assert leaked == []

    def test_failover_with_empty_bucket_reports_error(self):
        bucket = InMemoryObjectStore()
        coordinator = FailoverCoordinator(
            bucket, POSTGRES_PROFILE,
            detector=FailureDetector(bucket, misses_allowed=1),
            poll_interval=0.0, clock=ManualClock(),
        )
        result = coordinator.run()
        assert not result.failed_over
        assert result.error is not None
