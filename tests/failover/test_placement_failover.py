"""Failover over a multi-provider placement: the read-quorum gate."""

from __future__ import annotations

from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.failover.coordinator import FailoverCoordinator
from repro.placement import build_placement
from repro.storage.memory import MemoryFileSystem

CONFIG = GinjaConfig(
    batch=4, safety=100, batch_timeout=0.02, safety_timeout=30.0,
    providers=3, placement="wal=mirror-2/q1,db=stripe-2-3,default=mirror-2/q1",
)
ENGINE = EngineConfig()


class _AlwaysDead:
    def poll(self) -> bool:
        return True


def protected_primary():
    store = build_placement(CONFIG.providers, CONFIG.placement)
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    ginja = Ginja(disk, store, POSTGRES_PROFILE, CONFIG)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
    return store, ginja, db


class TestQuorumGate:
    def test_promotes_through_read_quorum(self):
        store, ginja, db = protected_primary()
        for i in range(10):
            db.put("t", f"k{i}", b"v")
        db.close()
        ginja.stop()
        store.providers[0].kill()  # one provider down: quorum holds
        standby = store.clone()
        result = FailoverCoordinator(
            standby, POSTGRES_PROFILE, ginja_config=CONFIG,
            engine_config=ENGINE, detector=_AlwaysDead(),
        ).run(max_polls=1)
        assert result.quorum_ok
        assert result.failed_over, result.error
        assert result.recovered_rows == 10
        result.db.close()
        result.ginja.crash()
        standby.close()
        store.close()

    def test_refuses_without_read_quorum(self):
        store, ginja, db = protected_primary()
        db.put("t", "k", b"v")
        db.close()
        ginja.stop()
        store.providers[0].kill()
        store.providers[1].kill()  # stripes lose k; mirrors lose both
        standby = store.clone()
        result = FailoverCoordinator(
            standby, POSTGRES_PROFILE, ginja_config=CONFIG,
            engine_config=ENGINE, detector=_AlwaysDead(),
        ).run(max_polls=1)
        assert not result.failed_over
        assert not result.quorum_ok
        assert result.ginja is None
        assert "quorum" in (result.error or "")
        standby.close()
        store.close()

    def test_single_cloud_stores_are_ungated(self):
        """Stores without read_quorum_ok() keep the old behavior."""
        from repro.cloud.memory import InMemoryObjectStore

        result = FailoverCoordinator(
            InMemoryObjectStore(), POSTGRES_PROFILE, ginja_config=CONFIG,
            engine_config=ENGINE, detector=_AlwaysDead(),
        ).run(max_polls=1)
        # No quorum veto: it proceeds to recovery (and fails on the
        # empty bucket for a different, non-quorum reason).
        assert result.quorum_ok
