"""Seeded corruptions: audit detects, repair converges, recovery works."""

from __future__ import annotations

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import CloudError, GinjaError
from repro.common.units import KiB
from repro.cloud.memory import InMemoryObjectStore
from repro.core.bootstrap import reboot, recover_files
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.config import GinjaConfig
from repro.core.data_model import (
    CHECKPOINT,
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    encode_dump_payload,
    encode_wal_payload,
)
from repro.core.ginja import Ginja
from repro.core.pitr import RetentionPolicy
from repro.core.verification import verify_backup
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.failover import FailoverCoordinator, FailureDetector, HeartbeatWriter
from repro.fsck import audit, repair, resync_view
from repro.fsck.invariants import (
    DB_GROUP_INCOMPLETE,
    VIEW_PHANTOM,
    VIEW_TS_DRIFT,
    WAL_GAP,
    WAL_ORPHAN,
)
from repro.storage.memory import MemoryFileSystem

CODEC = ObjectCodec()
SEG = "pg_xlog/seg"


def put_wal(store, ts: int, data: bytes, offset: int) -> WALObjectMeta:
    meta = WALObjectMeta(ts=ts, filename=SEG, offset=offset)
    store.put(meta.key, CODEC.encode(encode_wal_payload([(offset, data)])))
    return meta


def put_dump(store, ts: int, files, *, part: int = 0, nparts: int = 1,
             seq: int = 0) -> DBObjectMeta:
    meta = DBObjectMeta(ts=ts, type=DUMP, size=1, part=part, nparts=nparts,
                        seq=seq)
    store.put(meta.key, CODEC.encode(encode_dump_payload(files)))
    return meta


def healthy_bucket() -> InMemoryObjectStore:
    """Dump at ts 0 plus a contiguous WAL run 1..6 tiling one segment."""
    store = InMemoryObjectStore()
    put_dump(store, 0, [("base/t", b"v0"), ("global/pg_control", b"c0")])
    for ts in range(1, 7):
        put_wal(store, ts, f"w{ts}".encode(), offset=(ts - 1) * 2)
    return store


def wal_key(ts: int) -> str:
    return WALObjectMeta(ts=ts, filename=SEG, offset=(ts - 1) * 2).key


class TestAuditDetects:
    def test_clean_bucket_is_ok(self):
        report = audit(healthy_bucket())
        assert report.ok
        assert report.objects == 7
        assert report.db_frontier_ts == 0
        assert report.wal_frontier_ts == 6
        assert report.first_gap_ts == 7

    def test_wal_gap_and_orphans(self):
        store = healthy_bucket()
        store.delete(wal_key(3))
        report = audit(store)
        assert not report.ok
        assert report.gaps == [3]
        assert report.orphans == [wal_key(4), wal_key(5), wal_key(6)]
        assert {v.rule for v in report.violations} == {WAL_GAP, WAL_ORPHAN}

    def test_incomplete_multipart_group(self):
        store = healthy_bucket()
        crashed = put_dump(store, 9, [("base/t", b"half")], part=0, nparts=2)
        report = audit(store)
        assert report.incomplete_groups == [crashed.key]
        assert {v.rule for v in report.violations} == {DB_GROUP_INCOMPLETE}

    def test_phantom_view_entry(self):
        store = healthy_bucket()
        view = CloudView()
        resync_view(store, view)
        assert audit(store, view).ok
        phantom = WALObjectMeta(ts=7, filename=SEG, offset=12)
        view.add_wal(phantom)  # acked in memory, never reached the bucket
        report = audit(store, view)
        assert report.view_phantom == [phantom.key]
        assert VIEW_PHANTOM in {v.rule for v in report.violations}

    def test_stale_db_below_retention_floor(self):
        store = InMemoryObjectStore()
        old = put_dump(store, 0, [("base/t", b"old")])
        put_dump(store, 4, [("base/t", b"new")], seq=1)
        put_wal(store, 5, b"w5", offset=0)
        flagged = audit(store, retention=RetentionPolicy.none())
        assert flagged.stale_db == [old.key]
        # Unknown policy: the old generation may be a kept PITR snapshot.
        assert audit(store, retention=None).ok


class TestRepair:
    def test_gap_repair_then_recovery(self):
        store = healthy_bucket()
        store.delete(wal_key(3))
        report = repair(store, mode="conservative")
        assert sorted(report.deleted) == [wal_key(4), wal_key(5), wal_key(6)]
        assert report.skipped == []
        assert report.objects == 3  # dump + WAL 1..2
        second = audit(store)
        assert second.ok and second.wal_frontier_ts == 2
        fs = MemoryFileSystem()
        recovery = recover_files(store, CODEC, fs)
        assert recovery.last_applied_wal_ts == 2
        assert fs.read_all(SEG) == b"w1w2"

    def test_repair_converges_on_every_seeded_corruption(self):
        store = healthy_bucket()
        view = CloudView()
        resync_view(store, view)  # agree first, then corrupt
        store.delete(wal_key(3))  # gap + orphans + a view phantom
        put_dump(store, 9, [("base/t", b"half")], part=0, nparts=2)
        retention = RetentionPolicy.none()
        report = repair(store, view=view, mode="resync", retention=retention)
        assert report.audit.violation_count > 0
        assert audit(store, view, retention=retention).ok
        # Idempotent: a second pass finds nothing left to do.
        again = repair(store, view=view, mode="resync", retention=retention)
        assert again.audit.ok and again.deleted == []

    def test_resync_clamps_counters_to_first_gap(self):
        store = healthy_bucket()
        store.delete(wal_key(3))
        view = CloudView()
        for info in store.list():
            view.add_listed(info.key)  # the buggy ingest: counter -> 7
        assert view.last_assigned_ts() == 6
        report = repair(store, view=view, mode="resync")
        assert report.frontier_ts == 2
        assert report.next_wal_ts == 3
        assert view.confirmed_ts() == 2
        assert view.last_assigned_ts() == 2

    def test_skipped_delete_is_not_fatal(self):
        class NoDeleteStore(InMemoryObjectStore):
            def delete(self, key: str) -> None:
                raise CloudError("delete refused")

        store = NoDeleteStore()
        put_dump(store, 0, [("base/t", b"v0")])
        for ts in range(1, 3):
            put_wal(store, ts, f"w{ts}".encode(), offset=(ts - 1) * 2)
        put_wal(store, 4, b"w4", offset=6)  # orphan beyond the gap at 3
        view = CloudView()
        report = repair(store, view=view, mode="resync")
        assert report.deleted == []
        assert report.skipped == [wal_key(4)]
        # The undeletable orphan must still leave the resynced view: the
        # counter is clamped below it and the frontier cannot cross it.
        assert view.last_assigned_ts() == 2
        assert all(meta.ts != 4 for meta in view.wal_objects())

    def test_mode_validation(self):
        store = InMemoryObjectStore()
        with pytest.raises(GinjaError):
            repair(store, mode="aggressive")
        with pytest.raises(GinjaError):
            repair(store, mode="resync")  # needs a view to rebuild


class TestRebootGapRegression:
    """``reboot()`` on a gapped bucket used to strand the frontier."""

    def test_reboot_resyncs_and_continues_below_the_gap(self):
        store = healthy_bucket()
        store.delete(wal_key(3))
        view = CloudView()
        count = reboot(store, view)
        assert count == 6  # every Ginja object the LIST found, pre-repair
        assert view.confirmed_ts() == 2
        assert view.last_assigned_ts() == 2
        # The next upload reuses ts 3 — the gap closes instead of growing.
        ts = view.next_wal_ts()
        assert ts == 3
        meta = put_wal(store, ts, b"w3", offset=4)
        view.add_wal(meta)
        assert view.confirmed_ts() == 3
        fs = MemoryFileSystem()
        recovery = recover_files(store, CODEC, fs)
        assert recovery.last_applied_wal_ts == 3
        assert fs.read_all(SEG) == b"w1w2w3"

    def test_reboot_on_clean_bucket_unchanged(self):
        store = healthy_bucket()
        view = CloudView()
        assert reboot(store, view) == 7
        assert view.confirmed_ts() == 6
        assert view.next_wal_ts() == 7
        assert store.exists(wal_key(6))


class TestFailoverAudit:
    ENGINE = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)
    CONFIG = GinjaConfig(batch=5, safety=50, batch_timeout=0.02,
                         safety_timeout=5.0)

    def test_coordinator_repairs_before_promoting(self):
        bucket = InMemoryObjectStore()
        disk = MemoryFileSystem()
        MiniDB.create(disk, POSTGRES_PROFILE, self.ENGINE).close()
        ginja = Ginja(disk, bucket, POSTGRES_PROFILE, self.CONFIG)
        ginja.start(mode="boot")
        db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, self.ENGINE)
        for i in range(25):
            db.put("t", f"k{i}", b"v")
        assert ginja.drain(timeout=10.0)
        HeartbeatWriter(bucket).beat_once()
        ginja.stop()
        # The disaster: one mid-run WAL object vanishes, stranding the
        # uploads beyond it.
        wal_ts = sorted(
            int(info.key[len("WAL/"):len("WAL/") + 12])
            for info in bucket.list("WAL/")
        )
        assert len(wal_ts) >= 3
        victim = wal_ts[len(wal_ts) // 2]
        doomed = [
            info.key for info in bucket.list("WAL/")
            if int(info.key[len("WAL/"):len("WAL/") + 12]) == victim
        ]
        bucket.delete(doomed[0])

        coordinator = FailoverCoordinator(
            bucket, POSTGRES_PROFILE,
            ginja_config=self.CONFIG, engine_config=self.ENGINE,
            detector=FailureDetector(bucket, misses_allowed=2),
            poll_interval=0.01, clock=ManualClock(),
        )
        result = coordinator.run()
        assert result.failed_over, result.error
        assert result.audit_violations > 0
        assert result.repaired_keys  # the orphans beyond the gap
        assert all(key.startswith("WAL/") for key in result.repaired_keys)
        # The promoted standby sits on a bucket a fresh audit calls clean.
        assert audit(bucket, retention=self.CONFIG.retention).ok
        result.ginja.stop()


class TestDrillImageConvergence:
    """fsck over real crash-point disaster images: repair converges and
    the repaired bucket recovers and verifies."""

    @pytest.mark.parametrize("crash_point", [
        "pre-put", "mid-batch", "post-ack", "during-checkpoint", "during-gc",
    ])
    def test_repair_converges_on_disaster_image(self, crash_point):
        from repro.chaos.drill import run_drill
        from repro.chaos.scenarios import SCENARIOS

        scenario = SCENARIOS["baseline"]
        result = run_drill(scenario, crash_point, seed=0)
        assert result.snapshot, "drill produced an empty disaster image"
        bucket = InMemoryObjectStore()
        for key, body in result.snapshot.items():
            bucket.put(key, body)
        config = scenario.ginja_config(0)
        repair(bucket, mode="conservative", retention=config.retention)
        assert audit(bucket, retention=config.retention).ok
        ginja, report = Ginja.recover(
            bucket, MemoryFileSystem(), scenario.profile, config
        )
        assert report.files_restored > 0
        ginja.stop(drain_timeout=5.0)
        verification = verify_backup(
            bucket, scenario.profile, config,
            engine_config=scenario.engine_config(),
        )
        assert verification.ok, verification.errors
