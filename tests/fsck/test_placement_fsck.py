"""Cross-provider fsck: fragment-set completeness, replica agreement,
orphan detection, and repair convergence."""

from __future__ import annotations

from repro.fsck.placement import (
    FRAGMENT_ORPHAN,
    FRAGMENT_SET_INCOMPLETE,
    REPLICA_DISAGREEMENT,
    REPLICA_STALE,
    REPLICA_UNDERREPLICATED,
    audit_placement,
    repair_placement,
)
from repro.placement import build_placement
from repro.placement.fragments import FRAGMENT_ROOT

WAL_KEY = "WAL/000000000002_seg_0"
DUMP_KEY = "DB/000000000001_dump_40.0.1.0"


def protected_store():
    store = build_placement(
        3, "wal=mirror-2,db=stripe-2-3,default=mirror-2",
    )
    store.put(DUMP_KEY, b"D" * 40)
    store.put(WAL_KEY, b"W" * 30)
    return store


class TestAuditClean:
    def test_healthy_store_audits_clean(self):
        store = protected_store()
        report = audit_placement(store)
        assert report.ok, report.summary()
        assert report.logical.ok
        assert all(report.providers.values())
        store.close()

    def test_dead_provider_is_not_flagged(self):
        """Survivors must audit clean mid-outage: the dead provider's
        missing copies are an availability event, not a violation."""
        store = protected_store()
        store.providers[0].kill()
        report = audit_placement(store)
        assert report.ok, report.summary()
        assert report.providers[store.providers[0].name] is False
        store.close()


class TestAuditViolations:
    def test_missing_replica_on_reachable_provider(self):
        store = protected_store()
        store.providers[1].backend.delete(WAL_KEY)
        report = audit_placement(store)
        assert report.by_rule(REPLICA_UNDERREPLICATED)
        store.close()

    def test_replica_disagreement_on_size(self):
        store = protected_store()
        store.providers[1].backend.put(WAL_KEY, b"short")
        report = audit_placement(store)
        assert report.by_rule(REPLICA_DISAGREEMENT)
        store.close()

    def test_incomplete_fragment_set(self):
        store = protected_store()
        for provider in store.providers[1:]:
            for info in provider.backend.list(FRAGMENT_ROOT):
                provider.backend.delete(info.key)
        report = audit_placement(store)
        assert report.by_rule(FRAGMENT_SET_INCOMPLETE)
        store.close()

    def test_stale_generation_flagged(self):
        store = protected_store()
        store.put(DUMP_KEY, b"E" * 40)  # generation 2 everywhere
        stale = f"{FRAGMENT_ROOT}{DUMP_KEY}#1.0.2.3.40"
        store.providers[0].backend.put(stale, b"junk")
        report = audit_placement(store)
        assert report.by_rule(REPLICA_STALE)
        store.close()

    def test_orphan_fragment_flagged(self):
        """A fragment under a mirrored policy class cannot belong to
        anything — the mirrored object is authoritative."""
        store = protected_store()
        orphan = f"{FRAGMENT_ROOT}WAL/ghost#1.0.2.3.9"
        store.providers[2].backend.put(orphan, b"junk")
        report = audit_placement(store)
        assert report.by_rule(FRAGMENT_ORPHAN)
        store.close()

    def test_unreassemblable_fragment_set_flagged_not_deleted(self):
        """Below-k fragments of a striped key are flagged incomplete;
        repair leaves them alone (they may be the only copy left)."""
        store = protected_store()
        ghost = f"{FRAGMENT_ROOT}DB/ghost#1.1.2.3.9"
        store.providers[1].backend.put(ghost, b"junk")
        report = audit_placement(store)
        assert report.by_rule(FRAGMENT_SET_INCOMPLETE)
        store.repair()
        assert store.providers[1].backend.exists(ghost)
        store.close()


class TestRepairConvergence:
    def test_repair_fixes_everything_in_one_pass(self):
        store = protected_store()
        # Wound it four ways: lost replica, lost fragment, stale
        # generation, orphan fragment.
        store.providers[1].backend.delete(WAL_KEY)
        frag_info = store.providers[2].backend.list(FRAGMENT_ROOT)[0]
        store.providers[2].backend.delete(frag_info.key)
        store.providers[0].backend.put(
            f"{FRAGMENT_ROOT}{DUMP_KEY}#0.0.2.3.40", b"junk"
        )
        store.providers[1].backend.put(
            f"{FRAGMENT_ROOT}WAL/ghost#1.1.2.3.9", b"junk"
        )
        assert not audit_placement(store).ok
        report, post = repair_placement(store)
        assert post.ok, post.summary()
        assert report.actions >= 4
        assert store.get(WAL_KEY) == b"W" * 30
        assert store.get(DUMP_KEY) == b"D" * 40
        store.close()

    def test_repair_after_provider_replacement(self):
        store = protected_store()
        store.providers[0].kill()
        store.providers[0].revive(wipe=True)
        report, post = repair_placement(store)
        assert post.ok, post.summary()
        assert report.copies_restored >= 1
        assert report.fragments_rebuilt >= 1
        assert sum(report.egress_bytes.values()) > 0
        # Idempotent: a second pass finds nothing to do.
        second, still_ok = repair_placement(store)
        assert still_ok.ok and second.actions == 0
        store.close()
