"""The invariant catalog over synthetic bucket images."""

from __future__ import annotations

from repro.core.cloud_view import CloudView
from repro.core.data_model import CHECKPOINT, DBObjectMeta, DUMP, WALObjectMeta
from repro.core.pitr import RetentionPolicy
from repro.fsck.invariants import (
    BucketIndex,
    DB_BELOW_RETENTION_FLOOR,
    DB_GROUP_INCOMPLETE,
    INVARIANTS,
    VIEW_FRONTIER_DRIFT,
    VIEW_MISSING,
    VIEW_PHANTOM,
    VIEW_TS_DRIFT,
    WAL_GAP,
    WAL_ORPHAN,
    WAL_REDUNDANT,
    check_db_groups,
    check_retention_floor,
    check_view_agreement,
    check_wal_contiguity,
)


def wal(ts: int, filename: str = "seg", offset: int = 0) -> WALObjectMeta:
    return WALObjectMeta(ts=ts, filename=filename, offset=offset)


def db(ts: int, type_: str = DUMP, part: int = 0, nparts: int = 1,
       seq: int = 0) -> DBObjectMeta:
    return DBObjectMeta(ts=ts, type=type_, size=1, part=part, nparts=nparts,
                        seq=seq)


def index_of(*metas) -> BucketIndex:
    return BucketIndex.from_keys(meta.key for meta in metas)


def rules(violations) -> set[str]:
    return {violation.rule for violation in violations}


class TestBucketIndex:
    def test_classifies_key_families(self):
        index = BucketIndex.from_keys(
            [wal(1).key, db(0).key, "_meta/heartbeat", "junk"]
        )
        assert set(index.wal) == {1}
        assert set(index.groups) == {(0, 0, DUMP)}
        assert index.foreign == ["_meta/heartbeat", "junk"]
        assert index.object_count == 2

    def test_group_completeness(self):
        index = index_of(
            db(0),
            db(5, part=0, nparts=2), db(5, part=1, nparts=2),
            db(9, type_=CHECKPOINT, part=0, nparts=3),
        )
        assert set(index.complete_groups()) == {(0, 0, DUMP), (5, 0, DUMP)}
        assert set(index.incomplete_groups()) == {(9, 0, CHECKPOINT)}

    def test_db_frontier_ignores_incomplete_groups(self):
        index = index_of(db(0), db(9, part=0, nparts=2))
        assert index.db_frontier_ts() == 0

    def test_db_frontier_empty_bucket(self):
        assert BucketIndex().db_frontier_ts() == -1

    def test_wal_frontier_contiguous_run(self):
        index = index_of(db(0), wal(1), wal(2), wal(3))
        assert index.wal_frontier() == (3, [], [])

    def test_wal_frontier_with_gap_reports_orphans(self):
        index = index_of(db(0), wal(1), wal(2), wal(4), wal(6))
        frontier, gaps, orphans = index.wal_frontier()
        assert frontier == 2
        assert gaps == [3, 5]
        assert [meta.ts for meta in orphans] == [4, 6]

    def test_redundant_wal_at_or_below_db_frontier(self):
        index = index_of(db(3), wal(2), wal(3), wal(4))
        assert [meta.ts for meta in index.redundant_wal()] == [2, 3]
        assert index.wal_frontier() == (4, [], [])

    def test_retention_floor_unknown_policy_is_none(self):
        index = index_of(db(0), db(5))
        assert index.retention_floor(None) is None

    def test_retention_floor_no_dumps_is_none(self):
        index = index_of(db(4, type_=CHECKPOINT))
        assert index.retention_floor(RetentionPolicy.none()) is None

    def test_retention_floor_generation_math(self):
        index = index_of(db(0), db(5, seq=2), db(9, seq=4))
        assert index.retention_floor(RetentionPolicy.none()) == (9, 4)
        assert index.retention_floor(RetentionPolicy(generations=1)) == (5, 2)
        assert index.retention_floor(RetentionPolicy(generations=7)) == (0, 0)


class TestWALContiguity:
    def test_clean_run_no_violations(self):
        index = index_of(db(0), wal(1), wal(2))
        assert check_wal_contiguity(index) == []

    def test_gap_and_orphans_flagged(self):
        index = index_of(db(0), wal(1), wal(3), wal(4))
        violations = check_wal_contiguity(index)
        assert rules(violations) == {WAL_GAP, WAL_ORPHAN}
        orphan_keys = [v.key for v in violations if v.rule == WAL_ORPHAN]
        assert orphan_keys == [wal(3).key, wal(4).key]

    def test_redundant_wal_flagged(self):
        index = index_of(db(2), wal(1), wal(2), wal(3))
        violations = check_wal_contiguity(index)
        assert rules(violations) == {WAL_REDUNDANT}
        assert [v.key for v in violations] == [wal(1).key, wal(2).key]


class TestDBGroups:
    def test_complete_groups_pass(self):
        index = index_of(db(0, part=0, nparts=2), db(0, part=1, nparts=2))
        assert check_db_groups(index) == []

    def test_incomplete_group_flags_every_part(self):
        index = index_of(
            db(0),
            db(7, part=0, nparts=3), db(7, part=2, nparts=3),
        )
        violations = check_db_groups(index)
        assert rules(violations) == {DB_GROUP_INCOMPLETE}
        assert len(violations) == 2


class TestRetentionFloor:
    def test_unknown_policy_flags_nothing(self):
        index = index_of(db(0), db(5, seq=1))
        assert check_retention_floor(index, retention=None) == []

    def test_superseded_generations_below_floor_flagged(self):
        index = index_of(
            db(0), db(2, type_=CHECKPOINT, seq=1), db(5, seq=2),
        )
        violations = check_retention_floor(
            index, retention=RetentionPolicy.none()
        )
        assert rules(violations) == {DB_BELOW_RETENTION_FLOOR}
        assert {v.key for v in violations} == {
            db(0).key, db(2, type_=CHECKPOINT, seq=1).key,
        }

    def test_kept_generations_inside_floor_pass(self):
        index = index_of(db(0), db(5, seq=2))
        assert check_retention_floor(
            index, retention=RetentionPolicy(generations=1)
        ) == []


class TestViewAgreement:
    def _agreeing_view(self, index: BucketIndex) -> CloudView:
        view = CloudView()
        frontier, _gaps, _orphans = index.wal_frontier()
        view.resync(
            [index.wal[ts] for ts in sorted(index.wal)],
            [m for _g, metas in sorted(index.groups.items()) for m in metas],
            frontier_ts=frontier, next_wal_ts=frontier + 1,
        )
        return view

    def test_no_view_no_checks(self):
        index = index_of(db(0), wal(1))
        assert check_view_agreement(index, view=None) == []

    def test_agreeing_view_passes(self):
        index = index_of(db(0), wal(1), wal(2))
        view = self._agreeing_view(index)
        assert check_view_agreement(index, view=view) == []

    def test_phantom_entries_flagged(self):
        index = index_of(db(0), wal(1))
        view = self._agreeing_view(index)
        view.add_wal(wal(2))  # acked upload the bucket never saw
        view.add_db(db(9, type_=CHECKPOINT, seq=1))
        violations = check_view_agreement(index, view=view)
        phantoms = [v.key for v in violations if v.rule == VIEW_PHANTOM]
        assert wal(2).key in phantoms
        assert db(9, type_=CHECKPOINT, seq=1).key in phantoms

    def test_missing_entries_flagged(self):
        index = index_of(db(0), wal(1), wal(2))
        stale = index_of(db(0), wal(1))
        view = self._agreeing_view(stale)
        violations = check_view_agreement(index, view=view)
        missing = [v.key for v in violations if v.rule == VIEW_MISSING]
        assert missing == [wal(2).key]
        assert VIEW_FRONTIER_DRIFT in rules(violations)

    def test_counter_drift_past_a_gap_flagged(self):
        """The reboot bug: ``add_listed`` pushes ``_next_wal_ts`` past a
        crash-induced gap, which the audit must call out."""
        index = index_of(db(0), wal(1), wal(2), wal(5))
        view = CloudView()
        for ts in (1, 2, 5):
            view.add_listed(wal(ts).key)
        for meta in (db(0),):
            view.add_listed(meta.key)
        view.force_frontier(0)
        violations = check_view_agreement(index, view=view)
        assert VIEW_TS_DRIFT in rules(violations)


class TestCatalog:
    def test_catalog_order_is_stable(self):
        assert list(INVARIANTS) == [
            "wal-contiguity", "db-groups", "retention-floor", "view-agreement",
        ]

    def test_every_predicate_accepts_the_uniform_signature(self):
        index = index_of(db(0), wal(1))
        for check in INVARIANTS.values():
            assert check(index, view=None, retention=None) == []
