"""Multi-cloud replication (§6: provider-scale fault tolerance)."""

from __future__ import annotations

import pytest

from repro.common.errors import CloudObjectNotFound, CloudUnavailable
from repro.cloud.faults import FaultPolicy
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.multi import MultiCloudStore
from repro.cloud.simulated import SimulatedCloud


def make_replicas(n=2):
    backends = [InMemoryObjectStore() for _ in range(n)]
    faults = [FaultPolicy() for _ in range(n)]
    clouds = [
        SimulatedCloud(backend=b, faults=f, time_scale=0.0)
        for b, f in zip(backends, faults)
    ]
    return backends, faults, clouds


class TestReplication:
    def test_put_reaches_all_replicas(self):
        backends, _faults, clouds = make_replicas()
        multi = MultiCloudStore(clouds)
        multi.put("k", b"v")
        assert all(b.get("k") == b"v" for b in backends)
        multi.close()

    def test_get_falls_back_to_second_replica(self):
        _backends, faults, clouds = make_replicas()
        multi = MultiCloudStore(clouds)
        multi.put("k", b"v")
        faults[0].fail_next(10)
        assert multi.get("k") == b"v"
        multi.close()

    def test_list_falls_back(self):
        _backends, faults, clouds = make_replicas()
        multi = MultiCloudStore(clouds)
        multi.put("k", b"v")
        faults[0].fail_next(10)
        assert [i.key for i in multi.list()] == ["k"]
        multi.close()

    def test_delete_fans_out(self):
        backends, _faults, clouds = make_replicas()
        multi = MultiCloudStore(clouds)
        multi.put("k", b"v")
        multi.delete("k")
        assert all(b.list() == [] for b in backends)
        multi.close()

    def test_missing_object_raises_not_found(self):
        _backends, _faults, clouds = make_replicas()
        multi = MultiCloudStore(clouds)
        with pytest.raises(CloudObjectNotFound):
            multi.get("nope")
        multi.close()


class TestQuorum:
    def test_quorum_put_succeeds_with_one_replica_down(self):
        backends, faults, clouds = make_replicas(3)
        multi = MultiCloudStore(clouds, write_quorum=2)
        faults[0].fail_next()
        multi.put("k", b"v")
        assert backends[1].get("k") == b"v"
        assert backends[2].get("k") == b"v"
        assert multi.replica_errors == 1
        multi.close()

    def test_put_fails_below_quorum(self):
        _backends, faults, clouds = make_replicas(2)
        multi = MultiCloudStore(clouds, write_quorum=2)
        faults[0].fail_next()
        with pytest.raises(CloudUnavailable):
            multi.put("k", b"v")
        multi.close()

    def test_invalid_quorum_rejected(self):
        _b, _f, clouds = make_replicas(2)
        with pytest.raises(ValueError):
            MultiCloudStore(clouds, write_quorum=3)
        with pytest.raises(ValueError):
            MultiCloudStore(clouds, write_quorum=0)

    def test_empty_store_list_rejected(self):
        with pytest.raises(ValueError):
            MultiCloudStore([])


class TestRepair:
    def test_repair_fills_missing_copies(self):
        backends, faults, clouds = make_replicas(2)
        multi = MultiCloudStore(clouds, write_quorum=1)
        faults[1].fail_next()  # replica 1 misses this object
        multi.put("k", b"v")
        assert not backends[1].exists("k")
        copies = multi.repair()
        assert copies == 1
        assert backends[1].get("k") == b"v"
        multi.close()

    def test_repair_noop_when_consistent(self):
        _backends, _faults, clouds = make_replicas(2)
        multi = MultiCloudStore(clouds)
        multi.put("k", b"v")
        assert multi.repair() == 0
        multi.close()


class TestLifecycle:
    def test_close_is_idempotent(self):
        _backends, _faults, clouds = make_replicas()
        multi = MultiCloudStore(clouds)
        multi.put("k", b"v")
        multi.close()
        multi.close()  # second call must be a no-op, not an error

    def test_concurrent_close_from_teardown_paths(self):
        """stop() and crash() may both reach close(); racing them must
        shut the pool down exactly once without raising."""
        import threading

        _backends, _faults, clouds = make_replicas()
        multi = MultiCloudStore(clouds)
        threads = [
            threading.Thread(target=multi.close) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert multi._closed
