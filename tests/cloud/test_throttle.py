"""Request throttling (S3 SlowDown model)."""

from __future__ import annotations

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import CloudUnavailable
from repro.cloud.faults import FaultPolicy, Throttle
from repro.cloud.simulated import SimulatedCloud


def throttled_cloud(rate, burst):
    clock = ManualClock()
    policy = FaultPolicy(throttle=Throttle(rate=rate, burst=burst))
    cloud = SimulatedCloud(time_scale=0.0, faults=policy, clock=clock)
    return clock, cloud


class TestThrottle:
    def test_burst_then_slowdown(self):
        _clock, cloud = throttled_cloud(rate=1.0, burst=3)
        for i in range(3):
            cloud.put(f"k{i}", b"x")  # the burst passes
        with pytest.raises(CloudUnavailable, match="SlowDown"):
            cloud.put("k3", b"x")

    def test_tokens_refill_with_time(self):
        clock, cloud = throttled_cloud(rate=2.0, burst=1)
        cloud.put("a", b"x")
        with pytest.raises(CloudUnavailable):
            cloud.put("b", b"x")
        clock.advance(1.0)  # 2 tokens accrue (capped at burst=1)
        cloud.put("b", b"x")

    def test_sustained_rate_enforced(self):
        clock, cloud = throttled_cloud(rate=5.0, burst=1)
        accepted = 0
        for _ in range(100):
            try:
                cloud.put("k", b"x")
                accepted += 1
            except CloudUnavailable:
                pass
            clock.advance(0.1)  # 10 attempts/sec against a 5/sec limit
        # ~rate x duration accepted (float refill drift rounds down some
        # windows), far below the 100 offered.
        assert 30 <= accepted <= 60

    def test_all_verbs_throttled(self):
        _clock, cloud = throttled_cloud(rate=1.0, burst=1)
        cloud.put("k", b"x")
        with pytest.raises(CloudUnavailable):
            cloud.get("k")

    def test_validation(self):
        with pytest.raises(ValueError):
            Throttle(rate=0)
        with pytest.raises(ValueError):
            Throttle(rate=1.0, burst=0)


class TestPipelineUnderThrottle:
    def test_uploads_survive_throttling_via_retries(self):
        """Ginja's retry/backoff absorbs SlowDown without losing data."""
        from repro.common.events import EventBus
        from repro.cloud.memory import InMemoryObjectStore
        from repro.cloud.transport import build_transport
        from repro.core.cloud_view import CloudView
        from repro.core.codec import ObjectCodec
        from repro.core.commit_pipeline import CommitPipeline
        from repro.core.config import GinjaConfig
        from repro.core.stats import GinjaStats

        policy = FaultPolicy(throttle=Throttle(rate=50.0, burst=5))
        backend = InMemoryObjectStore()
        cloud = SimulatedCloud(backend=backend, time_scale=0.0, faults=policy)
        config = GinjaConfig(batch=1, safety=100, batch_timeout=0.005,
                             safety_timeout=30.0, uploaders=4,
                             max_retries=50, retry_backoff=0.002)
        bus = EventBus()
        stats = GinjaStats().attach(bus)
        transport = build_transport(cloud, config, bus=bus)
        pipeline = CommitPipeline(config, transport, ObjectCodec(),
                                  CloudView(), bus)
        pipeline.start()
        try:
            for i in range(40):
                pipeline.submit("seg", i * 512, b"u")
            assert pipeline.drain(timeout=20.0)
            assert len(backend.list("WAL/")) == 40
            assert stats.upload_retries > 0  # throttling actually bit
        finally:
            pipeline.stop(drain_timeout=5.0)
