"""Unit tests for the shared upload reactor (repro.cloud.reactor).

The reactor is the one event-loop thread driving every tenant's WAL and
checkpoint PUTs, so these tests pin exactly the properties the pipeline
and fleet rely on: the bounded global window, per-lane fair-share
admission, backoff bookkeeping without parked threads, the two cancel
flavours (poison drops queued work only; abort interrupts in-flight
PUTs), crash poisoning every attached lane, and a stop() that leaves no
``ginja-`` threads behind.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.reactor import UploadReactor
from repro.cloud.retry import RetryLayer, RetryPolicy
from repro.common.clock import ManualClock
from repro.common.errors import CloudUnavailable, GinjaError
from repro.common.events import EventBus


class GatedStore(InMemoryObjectStore):
    """An async store whose PUTs park (as loop timers) until released."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.concurrent = 0
        self.peak = 0

    async def aput(self, key, data):
        # Runs on the reactor loop thread only, so plain ints are safe.
        self.concurrent += 1
        self.peak = max(self.peak, self.concurrent)
        try:
            while not self.release.is_set():
                await asyncio.sleep(0.001)
        finally:
            self.concurrent -= 1
        self.put(key, data)


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


@pytest.fixture
def reactor():
    r = UploadReactor(inflight_window=4, io_threads=2)
    r.start()
    yield r
    if r.alive:
        r.stop()


class TestWindows:
    def test_global_window_bounds_inflight(self, reactor):
        store = GatedStore()
        reactor.attach("a", window=64)
        handles = [
            reactor.submit(store, f"k{i}", b"x", tenant="a") for i in range(12)
        ]
        assert wait_for(lambda: reactor.health()["inflight"] == 4)
        health = reactor.health()
        assert health["queued"] == 8
        assert store.peak <= 4
        store.release.set()
        for handle in handles:
            assert handle.wait(5.0) and handle.ok
        assert store.peak == 4
        assert len(store) == 12

    def test_lane_window_caps_one_tenant(self, reactor):
        store = GatedStore()
        reactor.attach("hot", window=2)
        reactor.attach("cold", window=2)
        hot = [
            reactor.submit(store, f"h{i}", b"x", tenant="hot")
            for i in range(10)
        ]
        # The hot tenant may not hog the global window: its lane caps it
        # at 2 even though 4 global slots exist.
        assert wait_for(
            lambda: reactor.health()["tenants"]["hot"]["inflight"] == 2
        )
        cold = reactor.submit(store, "c0", b"x", tenant="cold")
        assert wait_for(
            lambda: reactor.health()["tenants"]["cold"]["inflight"] == 1
        )
        store.release.set()
        for handle in [*hot, cold]:
            assert handle.wait(5.0) and handle.ok

    def test_attach_refcounts_and_window_max(self, reactor):
        reactor.attach("t", window=2)
        reactor.attach("t", window=6)  # pipeline + checkpointer share
        assert reactor.health()["tenants"]["t"]["window"] == 6
        reactor.detach("t")
        assert "t" in reactor.health()["tenants"]
        reactor.detach("t")
        assert "t" not in reactor.health()["tenants"]

    def test_submit_requires_attached_lane(self, reactor):
        with pytest.raises(GinjaError, match="not attached"):
            reactor.submit(InMemoryObjectStore(), "k", b"x", tenant="ghost")


class TestCancel:
    def test_cancel_queued_only_lets_inflight_finish(self, reactor):
        store = GatedStore()
        reactor.attach("t", window=1)
        seen = []
        handles = [
            reactor.submit(store, f"k{i}", b"x", tenant="t",
                           on_done=seen.append)
            for i in range(3)
        ]
        assert wait_for(lambda: store.concurrent == 1)
        reactor.cancel("t", queued_only=True)
        # The two queued submissions resolve cancelled, with on_done.
        assert handles[1].wait(5.0) and handles[1].cancelled
        assert handles[2].wait(5.0) and handles[2].cancelled
        # The in-flight PUT was not interrupted: it completes once
        # released, to its own verdict.
        assert not handles[0].done
        store.release.set()
        assert handles[0].wait(5.0) and handles[0].ok
        assert wait_for(lambda: len(seen) == 3)

    def test_full_cancel_interrupts_inflight(self, reactor):
        store = GatedStore()
        reactor.attach("t", window=1)
        handle = reactor.submit(store, "k", b"x", tenant="t")
        assert wait_for(lambda: store.concurrent == 1)
        reactor.cancel("t")
        assert handle.wait(5.0)
        assert handle.cancelled and not handle.ok
        assert "k" not in store.snapshot()

    def test_cancel_spares_other_lanes(self, reactor):
        store = GatedStore()
        reactor.attach("a", window=1)
        reactor.attach("b", window=1)
        doomed = reactor.submit(store, "a0", b"x", tenant="a")
        spared = reactor.submit(store, "b0", b"x", tenant="b")
        assert wait_for(lambda: store.concurrent == 2)
        reactor.cancel("a")
        assert doomed.wait(5.0) and doomed.cancelled
        assert not spared.done
        store.release.set()
        assert spared.wait(5.0) and spared.ok


class TestCrash:
    def test_crash_poisons_every_attached_lane(self, reactor):
        store = GatedStore()
        fatals: list[BaseException] = []
        reactor.attach("a", window=1, on_fatal=fatals.append)
        reactor.attach("b", window=1, on_fatal=fatals.append)
        inflight = reactor.submit(store, "a0", b"x", tenant="a")
        reactor.attach("c", window=1)
        queued = [
            reactor.submit(store, f"c{i}", b"x", tenant="c")
            for i in range(3)
        ]
        assert wait_for(lambda: store.concurrent >= 1)
        boom = RuntimeError("loop died")
        reactor.crash(boom)
        assert not reactor.alive
        assert len(fatals) == 2 and all(f is boom for f in fatals)
        assert inflight.wait(5.0) and inflight.error is boom
        for handle in queued:
            assert handle.wait(5.0) and handle.error is boom
        with pytest.raises(GinjaError, match="dead"):
            reactor.submit(store, "k", b"x", tenant="a")

    def test_wait_idle_reports_failure_after_crash(self, reactor):
        store = GatedStore()
        reactor.attach("t", window=1)
        reactor.submit(store, "k", b"x", tenant="t")
        assert wait_for(lambda: store.concurrent == 1)
        reactor.crash()
        assert reactor.wait_idle("t", timeout=1.0) is False


class TestStop:
    def test_stop_fails_queued_and_retires_threads(self):
        reactor = UploadReactor(inflight_window=1, io_threads=2)
        reactor.start()
        store = GatedStore()
        reactor.attach("t", window=1)
        inflight = reactor.submit(store, "k0", b"x", tenant="t")
        queued = reactor.submit(store, "k1", b"x", tenant="t")
        assert wait_for(lambda: store.concurrent == 1)
        reactor.stop()
        assert queued.wait(5.0) and isinstance(queued.error, GinjaError)
        assert inflight.wait(5.0) and not inflight.ok
        assert not reactor.alive
        lingering = [
            t.name for t in threading.enumerate()
            if t.name.startswith("ginja-reactor")
        ]
        assert lingering == []
        with pytest.raises(GinjaError, match="not running"):
            reactor.submit(store, "k2", b"x", tenant="t")

    def test_blocking_put_override_does_not_wedge_the_loop(self):
        # InMemoryObjectStore.aput inlines the dict insert on the loop
        # thread — but only for the pristine put.  A subclass whose put
        # blocks (every fault-model store in the benchmarks) must be
        # bridged off the loop, or one stalled PUT serializes the whole
        # reactor.
        class StallsFirst(InMemoryObjectStore):
            def __init__(self):
                super().__init__()
                self.release = threading.Event()
                self._n = 0
                self._lock = threading.Lock()

            def put(self, key, data):
                with self._lock:
                    self._n += 1
                    first = self._n == 1
                if first:
                    self.release.wait(timeout=10.0)
                super().put(key, data)

        reactor = UploadReactor(inflight_window=3, io_threads=4)
        reactor.start()
        store = StallsFirst()
        try:
            reactor.attach("t", window=3)
            handles = [
                reactor.submit(store, f"k{i}", b"x", tenant="t")
                for i in range(3)
            ]
            # The stalled first PUT must not stop the other two.
            assert wait_for(lambda: handles[1].done and handles[2].done)
            assert not handles[0].done
        finally:
            store.release.set()
            for handle in handles:
                assert handle.wait(5.0) and handle.ok
            reactor.stop()

    def test_executor_bridges_sync_only_stores(self):
        # A store with no native aput still uploads — through the
        # reactor's bounded executor, not a per-upload thread.
        class SyncOnly:
            def __init__(self):
                self.inner = InMemoryObjectStore()

            def put(self, key, data):
                self.inner.put(key, data)

        reactor = UploadReactor(inflight_window=2, io_threads=2)
        reactor.start()
        try:
            reactor.attach("t", window=2)
            store = SyncOnly()
            handles = [
                reactor.submit(store, f"k{i}", b"x", tenant="t")
                for i in range(6)
            ]
            for handle in handles:
                assert handle.wait(5.0) and handle.ok
            assert len(store.inner) == 6
        finally:
            reactor.stop()


class TestBackoffBookkeeping:
    def test_retries_ride_loop_timers_and_feed_the_gauge(self, reactor):
        class Flaky(InMemoryObjectStore):
            def __init__(self, failures):
                super().__init__()
                self.failures = failures
                self.attempts = 0

            def put(self, key, data):
                self.attempts += 1
                if self.attempts <= self.failures:
                    raise CloudUnavailable("injected")
                super().put(key, data)

        store = Flaky(2)
        layer = RetryLayer(
            store, RetryPolicy(max_retries=5, base_backoff=1.0, jitter=0.0),
            clock=ManualClock(), bus=EventBus(),
        )
        reactor.attach("t", window=1)
        handle = reactor.submit(layer, "k", b"x", tenant="t")
        assert handle.wait(5.0) and handle.ok
        health = reactor.health()["tenants"]["t"]
        assert health["retries"] == 2
        assert health["backoffs"] == 0  # gauge returns to zero
        assert store.attempts == 3


class TestRetryBudgetsUnderConcurrency:
    def test_same_key_puts_keep_private_budgets(self, reactor):
        """Two concurrent PUTs of the same key: one exhausts its PUT
        budget and fails, the other succeeds — budgets are per-request,
        and the loser's exhaustion neither cancels nor corrupts the
        winner still in flight."""

        class KeyedFailures(InMemoryObjectStore):
            def __init__(self):
                super().__init__()
                self.bad_attempts = 0

            def put(self, key, data):
                if data == b"bad":
                    self.bad_attempts += 1
                    raise CloudUnavailable("permanently failing payload")
                super().put(key, data)

        store = KeyedFailures()
        bus = EventBus()
        retries = []
        bus.subscribe(retries.append, kinds={"retry"})
        layer = RetryLayer(
            store, RetryPolicy(max_retries=2, base_backoff=1.0, jitter=0.0),
            clock=ManualClock(), bus=bus,
        )
        reactor.attach("t", window=2)
        doomed = reactor.submit(layer, "k", b"bad", tenant="t")
        winner = reactor.submit(layer, "k", b"good", tenant="t")
        assert doomed.wait(5.0)
        assert isinstance(doomed.error, CloudUnavailable)
        assert winner.wait(5.0) and winner.ok
        # Exhaustion is exact: budget+1 attempts for the poison PUT.
        assert store.bad_attempts == 3
        assert len(retries) == 2
        assert store.get("k") == b"good"
        # The lane is clean afterwards — the next PUT is unaffected.
        after = reactor.submit(layer, "k2", b"fine", tenant="t")
        assert after.wait(5.0) and after.ok


class TestHealth:
    def test_health_shape(self, reactor):
        reactor.attach("t", window=3)
        health = reactor.health()
        assert health["running"] is True
        assert health["window"] == 4
        assert health["io_threads"] == 2
        assert health["inflight"] == 0
        assert health["queued"] == 0
        lane = health["tenants"]["t"]
        assert lane == {
            "queued": 0, "inflight": 0, "backoffs": 0, "retries": 0,
            "window": 3,
        }
