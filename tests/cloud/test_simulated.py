"""Simulated cloud: latency accounting, fault injection, metering."""

from __future__ import annotations

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import CloudUnavailable
from repro.cloud.faults import FaultPolicy, Outage
from repro.cloud.latency import LatencyModel, WAN_LATENCY
from repro.cloud.simulated import SimulatedCloud


class TestBasicBehaviour:
    def test_acts_like_a_store(self, cloud):
        cloud.put("k", b"abc")
        assert cloud.get("k") == b"abc"
        assert [i.key for i in cloud.list()] == ["k"]
        cloud.delete("k")
        assert cloud.list() == []

    def test_rejects_negative_time_scale(self):
        with pytest.raises(ValueError):
            SimulatedCloud(time_scale=-1)


class TestLatency:
    def test_put_sleeps_scaled_latency(self):
        clock = ManualClock()
        model = LatencyModel(put_base=10.0, put_bytes_per_sec=1e6)
        cloud = SimulatedCloud(latency=model, time_scale=0.5, clock=clock)
        cloud.put("k", b"x" * 1_000_000)  # modeled: 10 + 1 = 11s
        assert clock.now() == pytest.approx(5.5)

    def test_meter_records_unscaled_latency(self):
        clock = ManualClock()
        model = LatencyModel(put_base=2.0)
        cloud = SimulatedCloud(latency=model, time_scale=0.0, clock=clock)
        cloud.put("k", b"x")
        assert cloud.meter.puts.mean_latency == pytest.approx(2.0)
        assert clock.now() == 0.0  # nothing slept

    def test_wan_preset_matches_table3_scale(self):
        """A ~3 MB PUT over the paper's WAN takes roughly 2-3 seconds."""
        latency = WAN_LATENCY.put_latency(3_018_000, rng=None)
        assert 2.0 < latency < 3.5

    def test_jitter_is_deterministic_per_seed(self):
        cloud_a = SimulatedCloud(latency=WAN_LATENCY, time_scale=0.0, seed=7)
        cloud_b = SimulatedCloud(latency=WAN_LATENCY, time_scale=0.0, seed=7)
        cloud_a.put("k", b"x" * 100)
        cloud_b.put("k", b"x" * 100)
        assert cloud_a.meter.puts.latency_total == cloud_b.meter.puts.latency_total


class TestMetering:
    def test_counts_and_bytes(self, cloud):
        cloud.put("a", b"12345")
        cloud.put("b", b"123")
        cloud.get("a")
        cloud.list()
        cloud.delete("b")
        meter = cloud.meter
        assert meter.puts.count == 2
        assert meter.puts.bytes == 8
        assert meter.gets.count == 1
        assert meter.gets.bytes == 5
        assert meter.lists.count == 1
        assert meter.deletes.count == 1
        assert meter.stored_bytes == 5

    def test_overwrite_does_not_double_count_storage(self, cloud):
        cloud.put("k", b"12345")
        cloud.put("k", b"123")
        assert cloud.meter.stored_bytes == 3

    def test_storage_integral(self):
        clock = ManualClock()
        cloud = SimulatedCloud(time_scale=0.0, clock=clock)
        cloud.put("k", b"x" * 100)
        clock.advance(10)
        assert cloud.meter.byte_seconds(cloud.elapsed()) == pytest.approx(1000)
        cloud.delete("k")
        clock.advance(5)
        assert cloud.meter.byte_seconds(cloud.elapsed()) == pytest.approx(1000)

    def test_average_stored_bytes(self):
        clock = ManualClock()
        cloud = SimulatedCloud(time_scale=0.0, clock=clock)
        cloud.put("k", b"x" * 100)
        clock.advance(10)
        avg = cloud.meter.average_stored_bytes(0.0, cloud.elapsed())
        assert avg == pytest.approx(100)

    def test_peak_storage(self, cloud):
        cloud.put("a", b"x" * 10)
        cloud.put("b", b"x" * 20)
        cloud.delete("a")
        assert cloud.meter.peak_stored_bytes == 30
        assert cloud.meter.stored_bytes == 20


class TestFaults:
    def test_forced_failure(self):
        faults = FaultPolicy()
        cloud = SimulatedCloud(time_scale=0.0, faults=faults)
        faults.fail_next()
        with pytest.raises(CloudUnavailable):
            cloud.put("k", b"x")
        cloud.put("k", b"x")  # next request succeeds

    def test_failed_put_stores_nothing(self):
        faults = FaultPolicy()
        cloud = SimulatedCloud(time_scale=0.0, faults=faults)
        faults.fail_next()
        with pytest.raises(CloudUnavailable):
            cloud.put("k", b"x")
        assert cloud.list() == []
        assert cloud.meter.puts.count == 0

    def test_outage_window(self):
        clock = ManualClock()
        faults = FaultPolicy(outages=[Outage(start=5.0, end=10.0)])
        cloud = SimulatedCloud(time_scale=0.0, faults=faults, clock=clock)
        cloud.put("before", b"x")
        clock.advance(6)
        with pytest.raises(CloudUnavailable):
            cloud.put("during", b"x")
        clock.advance(6)
        cloud.put("after", b"x")
        assert [i.key for i in cloud.list()] == ["after", "before"]

    def test_error_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(error_rate=1.5)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            Outage(start=5.0, end=1.0)

    def test_error_rate_one_always_fails(self):
        cloud = SimulatedCloud(time_scale=0.0, faults=FaultPolicy(error_rate=1.0))
        with pytest.raises(CloudUnavailable):
            cloud.get("k")
