"""Object store backends: in-memory and on-disk."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cloud.directory import DirectoryObjectStore
from repro.cloud.interface import ObjectInfo
from repro.cloud.memory import InMemoryObjectStore
from repro.common.errors import CloudObjectNotFound


@pytest.fixture(params=["memory", "directory"])
def any_store(request, tmp_path):
    if request.param == "memory":
        return InMemoryObjectStore()
    return DirectoryObjectStore(tmp_path / "bucket")


class TestVerbs:
    def test_put_then_get(self, any_store):
        any_store.put("WAL/0001_seg_0", b"hello")
        assert any_store.get("WAL/0001_seg_0") == b"hello"

    def test_put_overwrites(self, any_store):
        any_store.put("k", b"v1")
        any_store.put("k", b"v2")
        assert any_store.get("k") == b"v2"

    def test_get_missing_raises(self, any_store):
        with pytest.raises(CloudObjectNotFound):
            any_store.get("nope")

    def test_delete_then_get_raises(self, any_store):
        any_store.put("k", b"v")
        any_store.delete("k")
        with pytest.raises(CloudObjectNotFound):
            any_store.get("k")

    def test_delete_missing_is_noop(self, any_store):
        any_store.delete("never-existed")  # must not raise

    def test_empty_body_roundtrip(self, any_store):
        any_store.put("empty", b"")
        assert any_store.get("empty") == b""

    def test_binary_safety(self, any_store):
        payload = bytes(range(256)) * 3
        any_store.put("bin", payload)
        assert any_store.get("bin") == payload


class TestList:
    def test_list_is_sorted_by_key(self, any_store):
        for key in ("b", "a", "c/x", "c/a"):
            any_store.put(key, b".")
        keys = [info.key for info in any_store.list()]
        assert keys == sorted(keys)

    def test_list_prefix_filter(self, any_store):
        any_store.put("WAL/1", b"aa")
        any_store.put("WAL/2", b"bbb")
        any_store.put("DB/1", b"c")
        assert [i.key for i in any_store.list("WAL/")] == ["WAL/1", "WAL/2"]

    def test_list_reports_sizes(self, any_store):
        any_store.put("k", b"12345")
        (info,) = any_store.list("k")
        assert info == ObjectInfo(key="k", size=5)

    def test_total_bytes(self, any_store):
        any_store.put("a", b"12")
        any_store.put("b", b"345")
        assert any_store.total_bytes() == 5

    def test_exists(self, any_store):
        any_store.put("a/b", b"x")
        assert any_store.exists("a/b")
        assert not any_store.exists("a")  # prefix is not the object itself


class TestDirectoryStoreSpecifics:
    def test_keys_with_special_characters(self, tmp_path):
        store = DirectoryObjectStore(tmp_path / "b")
        key = "WAL/000123_pg_xlog%2Fseg_8192"
        store.put(key, b"data")
        assert store.get(key) == b"data"
        assert [i.key for i in store.list()] == [key]

    def test_persistence_across_instances(self, tmp_path):
        DirectoryObjectStore(tmp_path / "b").put("k", b"v")
        assert DirectoryObjectStore(tmp_path / "b").get("k") == b"v"

    def test_tmp_files_not_listed(self, tmp_path):
        store = DirectoryObjectStore(tmp_path / "b")
        (store.root / "stray.tmp").write_bytes(b"junk")
        assert store.list() == []


class TestMemoryStoreSpecifics:
    def test_put_snapshot_isolated_from_caller_buffer(self):
        store = InMemoryObjectStore()
        buf = bytearray(b"aaaa")
        store.put("k", bytes(buf))
        buf[:] = b"zzzz"
        assert store.get("k") == b"aaaa"

    def test_len_and_clear(self):
        store = InMemoryObjectStore()
        store.put("a", b"1")
        store.put("b", b"2")
        assert len(store) == 2
        store.clear()
        assert len(store) == 0


@given(
    st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=30,
        ),
        st.binary(max_size=200),
        max_size=20,
    )
)
def test_memory_store_matches_dict_model(contents):
    """Property: the store behaves exactly like a dict of bytes."""
    store = InMemoryObjectStore()
    for key, value in contents.items():
        store.put(key, value)
    assert store.snapshot() == contents
    assert [i.key for i in store.list()] == sorted(contents)
    for key, value in contents.items():
        assert store.get(key) == value
