"""Price books and billing — anchored to the paper's §3/§7 numbers."""

from __future__ import annotations

import pytest

from repro.common.clock import ManualClock
from repro.common.units import GB
from repro.cloud.pricing import (
    AZURE_BLOB_2017,
    GOOGLE_STORAGE_2017,
    S3_STANDARD_2017,
    SECONDS_PER_MONTH,
)
from repro.cloud.simulated import SimulatedCloud


class TestPaperAnchors:
    def test_s3_storage_price_is_papers(self):
        # §3: "$0.023 per GB/month"
        assert S3_STANDARD_2017.storage_cost(1.0) == pytest.approx(0.023)

    def test_s3_put_price_is_papers(self):
        # §3: "$0.005 per 1000 file uploads"
        assert S3_STANDARD_2017.put_cost(1000) == pytest.approx(0.005)

    def test_egress_roughly_4x_storage(self):
        # §7.3: downloading 1 GB costs "almost 4x" storing it a month.
        ratio = S3_STANDARD_2017.egress_per_gb / S3_STANDARD_2017.storage_gb_month
        assert 3.5 < ratio < 4.5

    def test_same_region_egress_is_free(self):
        # §7.3: "downloads from S3 to EC2 in the same region are free".
        assert S3_STANDARD_2017.egress_cost(100.0, same_region=True) == 0.0

    def test_all_books_have_positive_rates(self):
        for book in (S3_STANDARD_2017, AZURE_BLOB_2017, GOOGLE_STORAGE_2017):
            assert book.storage_gb_month > 0
            assert book.put_per_1000 > 0
            assert book.egress_per_gb > 0


class TestMeteredBilling:
    def _run_window(self):
        clock = ManualClock()
        cloud = SimulatedCloud(time_scale=0.0, clock=clock)
        cloud.put("obj", b"x" * GB)  # 1 decimal GB
        clock.advance(SECONDS_PER_MONTH)  # stored for exactly a month
        return cloud

    def test_bill_window_storage_only(self):
        cloud = self._run_window()
        bill = S3_STANDARD_2017.bill_window(cloud.meter, cloud.elapsed())
        # 1 GB-month of storage + one PUT
        expected = 0.023 + 0.005 / 1000
        assert bill == pytest.approx(expected, rel=1e-6)

    def test_monthly_run_rate_matches_bill_for_month_window(self):
        cloud = self._run_window()
        rate = S3_STANDARD_2017.monthly_run_rate(cloud.meter, cloud.elapsed())
        bill = S3_STANDARD_2017.bill_window(cloud.meter, cloud.elapsed())
        assert rate == pytest.approx(bill, rel=1e-3)

    def test_run_rate_extrapolates_requests(self):
        clock = ManualClock()
        cloud = SimulatedCloud(time_scale=0.0, clock=clock)
        for i in range(10):
            cloud.put(f"k{i}", b"")
        clock.advance(SECONDS_PER_MONTH / 100)  # window = 1% of a month
        rate = S3_STANDARD_2017.monthly_run_rate(cloud.meter, cloud.elapsed())
        assert rate == pytest.approx(S3_STANDARD_2017.put_cost(1000), rel=0.01)

    def test_empty_window_run_rate_is_zero(self):
        cloud = SimulatedCloud(time_scale=0.0, clock=ManualClock())
        assert S3_STANDARD_2017.monthly_run_rate(cloud.meter, 0.0) == 0.0

    def test_gets_bill_egress(self):
        clock = ManualClock()
        cloud = SimulatedCloud(time_scale=0.0, clock=clock)
        cloud.put("k", b"x" * GB)
        cloud.get("k")
        clock.advance(1.0)
        bill = S3_STANDARD_2017.bill_window(cloud.meter, cloud.elapsed())
        assert bill >= S3_STANDARD_2017.egress_per_gb
