"""BotoS3Store adapter, exercised against a stub client (no network)."""

from __future__ import annotations

import io

import pytest

from repro.common.errors import CloudError, CloudObjectNotFound
from repro.cloud.s3 import BotoS3Store


class _StubPaginator:
    def __init__(self, objects):
        self._objects = objects

    def paginate(self, Bucket, Prefix=""):
        contents = [
            {"Key": key, "Size": len(body)}
            for key, body in sorted(self._objects.items())
            if key.startswith(Prefix)
        ]
        # Two pages, to prove pagination is walked.
        mid = len(contents) // 2
        yield {"Contents": contents[:mid]}
        yield {"Contents": contents[mid:]}


class _NoSuchKey(Exception):
    def __init__(self):
        super().__init__("NoSuchKey")
        self.response = {"Error": {"Code": "NoSuchKey"}}


class _StubClient:
    """Mimics the small slice of boto3's S3 client the adapter uses."""

    def __init__(self):
        self.objects: dict[str, bytes] = {}
        self.fail = False

    def put_object(self, Bucket, Key, Body):
        if self.fail:
            raise RuntimeError("simulated AWS error")
        self.objects[Key] = bytes(Body)

    def get_object(self, Bucket, Key):
        if Key not in self.objects:
            raise _NoSuchKey()
        return {"Body": io.BytesIO(self.objects[Key])}

    def delete_object(self, Bucket, Key):
        self.objects.pop(Key, None)

    def get_paginator(self, name):
        assert name == "list_objects_v2"
        return _StubPaginator(self.objects)


@pytest.fixture
def s3():
    client = _StubClient()
    return client, BotoS3Store("bucket", client=client, prefix="ginja/db1/")


class TestAdapter:
    def test_put_applies_prefix(self, s3):
        client, store = s3
        store.put("WAL/1", b"x")
        assert client.objects == {"ginja/db1/WAL/1": b"x"}

    def test_get_roundtrip(self, s3):
        _client, store = s3
        store.put("k", b"body")
        assert store.get("k") == b"body"

    def test_get_missing_maps_to_not_found(self, s3):
        _client, store = s3
        with pytest.raises(CloudObjectNotFound):
            store.get("missing")

    def test_list_strips_prefix_and_sorts(self, s3):
        _client, store = s3
        for key in ("WAL/2", "WAL/1", "DB/9", "DB/1", "WAL/3"):
            store.put(key, b"ab")
        infos = store.list()
        assert [i.key for i in infos] == ["DB/1", "DB/9", "WAL/1", "WAL/2", "WAL/3"]
        assert all(i.size == 2 for i in infos)

    def test_list_with_sub_prefix(self, s3):
        _client, store = s3
        store.put("WAL/1", b"x")
        store.put("DB/1", b"x")
        assert [i.key for i in store.list("WAL/")] == ["WAL/1"]

    def test_delete(self, s3):
        client, store = s3
        store.put("k", b"x")
        store.delete("k")
        assert client.objects == {}

    def test_provider_error_wrapped(self, s3):
        client, store = s3
        client.fail = True
        with pytest.raises(CloudError):
            store.put("k", b"x")
