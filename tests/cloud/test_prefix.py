"""Per-tenant keyspaces: PrefixedObjectStore and the key helpers.

The fleet's isolation guarantee rests on this layer: a tenant must not
be able to see, overwrite or (via exists()) even detect another
tenant's objects.  The adversarial cases here are sibling tenants whose
ids are prefixes of each other (``tenants/1/`` vs ``tenants/10/``) —
exactly where a prefix-scan exists() or a sloppy list() strip leaks.
"""

from __future__ import annotations

import pytest

from repro.cloud.interface import ObjectStore
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.prefix import (
    PrefixedObjectStore,
    tenant_of_key,
    tenant_prefix,
)
from repro.common.errors import CloudObjectNotFound


class ListOnlyStore(ObjectStore):
    """Backend that only implements the four verbs, so exists() falls
    back to the base-class LIST scan — the path S2 guards."""

    def __init__(self):
        self._objects: dict[str, bytes] = {}

    def put(self, key, data):
        self._objects[key] = data

    def get(self, key):
        try:
            return self._objects[key]
        except KeyError:
            raise CloudObjectNotFound(key) from None

    def list(self, prefix=""):
        from repro.cloud.interface import ObjectInfo

        return sorted(
            (
                ObjectInfo(key=k, size=len(v))
                for k, v in self._objects.items()
                if k.startswith(prefix)
            ),
            key=lambda info: info.key,
        )

    def delete(self, key):
        self._objects.pop(key, None)


class TestExistsExactMatch:
    """The default exists() must be exact-key, not prefix-hit."""

    def test_prefix_sibling_is_not_existence(self):
        store = ListOnlyStore()
        store.put("tenants/10/WAL/0", b"x")
        # "tenants/1" is a strict prefix of the stored key; a scan-based
        # exists() that treats any LIST hit as presence says True here.
        assert not store.exists("tenants/1")
        assert not store.exists("tenants/1/WAL/0")
        assert store.exists("tenants/10/WAL/0")

    def test_exact_key_alongside_longer_sibling(self):
        store = ListOnlyStore()
        store.put("tenants/1/WAL/0", b"a")
        store.put("tenants/10/WAL/0", b"b")
        assert store.exists("tenants/1/WAL/0")
        assert store.exists("tenants/10/WAL/0")
        assert not store.exists("tenants/1/WAL")
        assert not store.exists("tenants/100/WAL/0")

    def test_prefixed_view_exists_is_tenant_local(self):
        backend = ListOnlyStore()
        one = PrefixedObjectStore(backend, tenant_prefix("1"))
        ten = PrefixedObjectStore(backend, tenant_prefix("10"))
        ten.put("WAL/0", b"x")
        assert ten.exists("WAL/0")
        assert not one.exists("WAL/0")
        assert not one.exists("0/WAL/0")  # can't sneak into tenant 10


class TestPrefixedObjectStore:
    def test_round_trip_and_qualification(self):
        backend = InMemoryObjectStore()
        view = PrefixedObjectStore(backend, tenant_prefix("alpha"))
        view.put("WAL/0", b"payload")
        assert view.get("WAL/0") == b"payload"
        assert backend.get("tenants/alpha/WAL/0") == b"payload"
        assert [i.key for i in backend.list()] == ["tenants/alpha/WAL/0"]

    def test_list_strips_prefix_and_stays_sorted(self):
        backend = InMemoryObjectStore()
        view = PrefixedObjectStore(backend, tenant_prefix("alpha"))
        for key in ("WAL/2", "DB/1/0", "WAL/1"):
            view.put(key, b"x")
        backend.put("tenants/beta/WAL/9", b"other tenant")
        backend.put("unrelated/key", b"stray")
        keys = [info.key for info in view.list()]
        assert keys == ["DB/1/0", "WAL/1", "WAL/2"]
        assert [info.key for info in view.list("WAL/")] == ["WAL/1", "WAL/2"]

    def test_sibling_tenant_ids_do_not_bleed_in_list(self):
        backend = InMemoryObjectStore()
        one = PrefixedObjectStore(backend, tenant_prefix("1"))
        ten = PrefixedObjectStore(backend, tenant_prefix("10"))
        one.put("WAL/0", b"one")
        ten.put("WAL/0", b"ten")
        assert [i.key for i in one.list()] == ["WAL/0"]
        assert [i.key for i in ten.list()] == ["WAL/0"]
        assert one.get("WAL/0") == b"one"
        assert ten.get("WAL/0") == b"ten"

    def test_delete_and_total_bytes_are_tenant_local(self):
        backend = InMemoryObjectStore()
        one = PrefixedObjectStore(backend, tenant_prefix("1"))
        ten = PrefixedObjectStore(backend, tenant_prefix("10"))
        one.put("WAL/0", b"aaaa")
        ten.put("WAL/0", b"bb")
        assert one.total_bytes() == 4
        assert ten.total_bytes() == 2
        one.delete("WAL/0")
        assert not one.exists("WAL/0")
        assert ten.exists("WAL/0")
        with pytest.raises(CloudObjectNotFound):
            one.get("WAL/0")

    def test_prefix_normalised_to_trailing_slash(self):
        backend = InMemoryObjectStore()
        view = PrefixedObjectStore(backend, "tenants/x")
        assert view.prefix == "tenants/x/"
        view.put("k", b"v")
        assert backend.exists("tenants/x/k")

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            PrefixedObjectStore(InMemoryObjectStore(), "")


class TestTenantKeyHelpers:
    def test_tenant_prefix_layout(self):
        assert tenant_prefix("db-7") == "tenants/db-7/"

    def test_tenant_of_key(self):
        assert tenant_of_key("tenants/db-7/WAL/0") == "db-7"
        assert tenant_of_key("tenants/1/DB/0/3") == "1"

    @pytest.mark.parametrize(
        "key",
        [
            "WAL/0",  # unprefixed single-tenant key
            "tenants/",  # no id at all
            "tenants/db-7",  # id but no object under it
            "tenant/db-7/WAL/0",  # wrong root
            "tenants//WAL/0",  # empty id
            "",
        ],
    )
    def test_tenant_of_key_rejects(self, key):
        assert tenant_of_key(key) is None
