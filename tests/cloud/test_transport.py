"""The composable transport stack and the unified retry policy."""

from __future__ import annotations

import random

import pytest

from repro.common import events
from repro.common.clock import ManualClock
from repro.common.errors import CloudError, CloudUnavailable
from repro.common.events import EventBus
from repro.cloud.faults import FaultPolicy, Outage
from repro.cloud.latency import LatencyModel
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.metering import RequestMeter
from repro.cloud.retry import RetryLayer, RetryPolicy
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport, describe_transport
from repro.core.config import GinjaConfig

#: Deterministic (no jitter) latency model for billing assertions.
FLAT_LATENCY = LatencyModel(put_base=0.4, get_base=0.2,
                            list_base=0.25, delete_base=0.08)


class Recorder:
    """Subscriber that just keeps every event."""

    def __init__(self, bus: EventBus | None = None):
        self.events = []
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, event):
        self.events.append(event)

    def kinds(self):
        return [e.kind for e in self.events]

    def of(self, kind):
        return [e for e in self.events if e.kind == kind]


class TestAssembly:
    def test_full_stack_canonical_order(self):
        stack = build_transport(
            InMemoryObjectStore(), GinjaConfig(), latency=FLAT_LATENCY,
            faults=FaultPolicy(), metered=True, time_scale=0.0,
        )
        assert describe_transport(stack) == [
            "TracingLayer", "RetryLayer", "MeterLayer", "FaultLayer",
            "LatencyLayer", "InMemoryObjectStore",
        ]

    def test_layers_included_only_when_asked(self):
        backend = InMemoryObjectStore()
        assert describe_transport(build_transport(backend, tracing=False)) \
            == ["InMemoryObjectStore"]
        assert describe_transport(build_transport(backend)) \
            == ["TracingLayer", "InMemoryObjectStore"]
        assert describe_transport(
            build_transport(backend, GinjaConfig(), tracing=False)
        ) == ["RetryLayer", "InMemoryObjectStore"]

    def test_explicit_policy_overrides_config(self):
        policy = RetryPolicy(max_retries=9)
        stack = build_transport(
            InMemoryObjectStore(), GinjaConfig(max_retries=1),
            policy=policy, tracing=False,
        )
        assert stack.policy is policy

    def test_verbs_pass_through_the_whole_stack(self):
        backend = InMemoryObjectStore()
        stack = build_transport(
            backend, GinjaConfig(), latency=FLAT_LATENCY,
            faults=FaultPolicy(), metered=True, time_scale=0.0,
        )
        stack.put("a/k", b"data")
        assert backend.get("a/k") == b"data"
        assert stack.get("a/k") == b"data"
        assert [i.key for i in stack.list("a/")] == ["a/k"]
        assert stack.exists("a/k") and not stack.exists("a")
        assert stack.total_bytes() == 4
        stack.delete("a/k")
        assert backend.list() == []


class TestRetryPolicy:
    def test_backoff_grows_to_the_cap(self):
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, backoff_cap=0.5)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 5)] == \
            [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_configurable_cap_replaces_the_hardcoded_two_seconds(self):
        policy = RetryPolicy.from_config(GinjaConfig(retry_backoff_cap=8.0))
        assert policy.backoff(12) == 8.0

    def test_huge_attempt_counts_do_not_overflow(self):
        """Long-outage drills retry tens of thousands of times; the cap
        must apply before the exponential blows past float range."""
        policy = RetryPolicy(base_backoff=0.1, multiplier=2.0, backoff_cap=0.5)
        assert policy.backoff(30_000) == 0.5

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(base_backoff=1.0, backoff_cap=1.0, jitter=0.25)
        rng = random.Random(7)
        delays = [policy.backoff(1, rng) for _ in range(200)]
        assert all(0.75 <= d <= 1.25 for d in delays)
        assert len(set(delays)) > 1  # actually randomized

    def test_per_verb_budgets(self):
        policy = RetryPolicy(max_retries=5, budgets={"GET": 0})
        assert policy.budget("GET") == 0
        assert policy.budget("PUT") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(budgets={"POST": 1})
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_from_config_reads_every_knob(self):
        config = GinjaConfig(max_retries=7, retry_backoff=0.3,
                             retry_backoff_cap=4.0, retry_jitter=0.2,
                             retry_budgets={"DELETE": 1})
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 7
        assert policy.base_backoff == 0.3
        assert policy.backoff_cap == 4.0
        assert policy.jitter == 0.2
        assert policy.budget("DELETE") == 1


class FailingStore(InMemoryObjectStore):
    """Fails the first ``n`` calls of each verb."""

    def __init__(self, failures: int):
        super().__init__()
        self.failures = failures
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise CloudUnavailable("injected")

    def put(self, key, data):
        self._maybe_fail()
        super().put(key, data)

    def delete(self, key):
        self._maybe_fail()
        super().delete(key)


class TestRetryLayer:
    def test_transient_failures_absorbed_with_backoff(self):
        clock = ManualClock()
        bus = EventBus()
        rec = Recorder(bus)
        store = FailingStore(3)
        layer = RetryLayer(
            store,
            RetryPolicy(max_retries=5, base_backoff=1.0, multiplier=2.0,
                        backoff_cap=2.0),
            clock=clock, bus=bus,
        )
        layer.put("k", b"v")
        assert store.get("k") == b"v"
        retries = rec.of(events.RETRY)
        assert [e.attempt for e in retries] == [1, 2, 3]
        # ManualClock.sleep advances time: 1.0 + 2.0 + capped 2.0.
        assert clock.now() == pytest.approx(5.0)

    def test_put_exhaustion_is_fatal(self):
        layer = RetryLayer(
            FailingStore(100),
            RetryPolicy(max_retries=2, base_backoff=0.0),
            clock=ManualClock(),
        )
        with pytest.raises(CloudError):
            layer.put("k", b"v")

    def test_delete_exhaustion_is_skipped(self):
        bus = EventBus()
        rec = Recorder(bus)
        store = FailingStore(100)
        InMemoryObjectStore.put(store, "k", b"v")  # seed, bypassing faults
        layer = RetryLayer(
            store, RetryPolicy(max_retries=1, base_backoff=0.0),
            clock=ManualClock(), bus=bus,
        )
        layer.delete("k")  # does not raise
        (failure,) = rec.of(events.GC_DELETE)
        assert failure.ok is False
        assert failure.attempt == 2  # budget 1 -> two attempts made

    def test_delete_success_emits_gc_event(self):
        bus = EventBus()
        rec = Recorder(bus)
        store = InMemoryObjectStore()
        store.put("k", b"v")
        RetryLayer(store, RetryPolicy(), bus=bus).delete("k")
        (ok,) = rec.of(events.GC_DELETE)
        assert ok.ok is True and ok.attempt == 1

    def test_zero_budget_raises_immediately(self):
        store = FailingStore(1)
        layer = RetryLayer(
            store, RetryPolicy(max_retries=0), clock=ManualClock()
        )
        with pytest.raises(CloudError):
            layer.put("k", b"v")
        assert store.calls == 1

    def test_exists_and_total_bytes_ride_the_list_budget(self):
        """Regression: these two verbs used to bypass the retry loop, so
        a single transient error failed recovery-side callers (fsck, the
        failure detector) that every other verb would have survived."""

        class FlakyReads(FailingStore):
            def exists(self, key):
                self._maybe_fail()
                return super().exists(key)

            def total_bytes(self, prefix=""):
                self._maybe_fail()
                return super().total_bytes(prefix)

        bus = EventBus()
        rec = Recorder(bus)
        store = FlakyReads(2)
        InMemoryObjectStore.put(store, "k", b"v" * 7)
        layer = RetryLayer(
            store, RetryPolicy(max_retries=3, base_backoff=0.0),
            clock=ManualClock(), bus=bus,
        )
        assert layer.exists("k") is True
        store.failures = store.calls + 2
        assert layer.total_bytes() == 7
        retries = rec.of(events.RETRY)
        assert len(retries) == 4
        assert {e.verb for e in retries} == {"LIST"}

    def test_exists_exhaustion_is_fatal_not_skipped(self):
        # Unlike DELETE, a listing-class read that exhausts its budget
        # must surface the error — callers branch on the answer.
        class FlakyReads(FailingStore):
            def exists(self, key):
                self._maybe_fail()
                return super().exists(key)

        layer = RetryLayer(
            FlakyReads(100), RetryPolicy(max_retries=1, base_backoff=0.0),
            clock=ManualClock(),
        )
        with pytest.raises(CloudError):
            layer.exists("k")


class TestMeterLayer:
    def build(self, faults=None):
        bus = EventBus()
        meter = RequestMeter().attach(bus)
        stack = build_transport(
            InMemoryObjectStore(), GinjaConfig(max_retries=3,
                                               retry_backoff=0.0),
            bus=bus, latency=FLAT_LATENCY, faults=faults, metered=True,
            time_scale=0.0, clock=ManualClock(),
        )
        return stack, meter

    def test_modeled_latency_billed_despite_zero_time_scale(self):
        stack, meter = self.build()
        stack.put("k", b"data")
        stack.get("k")
        stack.list()
        stack.delete("k")
        assert meter.puts.count == 1
        assert meter.puts.latency_total == pytest.approx(0.4)
        assert meter.gets.latency_total == pytest.approx(0.2)
        assert meter.lists.latency_total == pytest.approx(0.25)
        assert meter.deletes.latency_total == pytest.approx(0.08)

    def test_failed_attempts_are_not_billed(self):
        faults = FaultPolicy()
        stack, meter = self.build(faults)
        faults.fail_next(2)
        stack.put("k", b"data")  # two rejected attempts, one success
        assert meter.puts.count == 1

    def test_facade_and_direct_stack_meter_identically(self):
        ops = [("put", "a", b"xyz"), ("put", "a", b"xy"), ("get", "a"),
               ("list",), ("delete", "a")]
        cloud = SimulatedCloud(latency=FLAT_LATENCY, time_scale=0.0, seed=3)
        bus = EventBus()
        meter = RequestMeter().attach(bus)
        stack = build_transport(
            InMemoryObjectStore(), bus=bus, tracing=False,
            latency=FLAT_LATENCY, metered=True, time_scale=0.0, seed=3,
        )
        for target in (cloud, stack):
            for op, *args in ops:
                getattr(target, op)(*args)
        for verb in ("puts", "gets", "lists", "deletes"):
            facade, direct = getattr(cloud.meter, verb), getattr(meter, verb)
            assert facade.count == direct.count
            assert facade.bytes == direct.bytes
            assert facade.latency_total == pytest.approx(direct.latency_total)


class TestFaultAndTracing:
    def test_outage_event_emitted(self):
        clock = ManualClock(start=100.0)
        bus = EventBus()
        rec = Recorder(bus)
        stack = build_transport(
            InMemoryObjectStore(), bus=bus, clock=clock, tracing=False,
            faults=FaultPolicy(outages=[Outage(start=5.0, end=50.0)]),
        )
        clock.advance(10.0)  # store time 10s, inside the window
        with pytest.raises(CloudUnavailable):
            stack.put("k", b"v")
        (outage,) = rec.of(events.OUTAGE)
        assert outage.verb == "PUT"
        assert outage.detail == "5s-50s"

    def test_fault_layer_covers_listing_class_reads(self):
        # exists/total_bytes are fault-injected like every other verb,
        # and the retry layer above them absorbs the injected errors.
        clock = ManualClock()
        faults = FaultPolicy()
        bare = build_transport(
            InMemoryObjectStore(), clock=clock, tracing=False, faults=faults,
        )
        faults.fail_next(1)
        with pytest.raises(CloudUnavailable):
            bare.exists("k")
        faults.fail_next(1)
        with pytest.raises(CloudUnavailable):
            bare.total_bytes()
        retried = build_transport(
            InMemoryObjectStore(),
            GinjaConfig(max_retries=3, retry_backoff=0.0),
            clock=clock, tracing=False, faults=faults,
        )
        faults.fail_next(2)
        assert retried.exists("k") is False
        faults.fail_next(2)
        assert retried.total_bytes() == 0

    def test_tracing_start_end_pairs(self):
        bus = EventBus()
        rec = Recorder(bus)
        stack = build_transport(InMemoryObjectStore(), bus=bus)
        stack.put("k", b"abc")
        data = stack.get("k")
        assert data == b"abc"
        assert rec.kinds() == [events.PUT_START, events.PUT_END,
                               events.GET_START, events.GET_END]
        (end,) = rec.of(events.GET_END)
        assert end.nbytes == 3  # GET end carries the bytes received

    def test_tracing_reports_exhausted_request_as_error(self):
        bus = EventBus()
        rec = Recorder(bus)
        stack = build_transport(
            FailingStore(100),
            GinjaConfig(max_retries=1, retry_backoff=0.0),
            bus=bus, clock=ManualClock(),
        )
        with pytest.raises(CloudError):
            stack.put("k", b"v")
        (end,) = rec.of(events.PUT_END)
        assert end.ok is False


class TestSeedPlumbing:
    """GinjaConfig.seed feeds one shared RNG to every stochastic layer."""

    def _rngs(self, stack):
        layers, layer = [], stack
        while layer is not None:
            layers.append(layer)
            layer = getattr(layer, "inner", None)
        return [l._rng for l in layers if hasattr(l, "_rng")]

    def test_config_seed_reaches_all_stochastic_layers(self):
        stack = build_transport(
            InMemoryObjectStore(), GinjaConfig(seed=1234),
            latency=FLAT_LATENCY, faults=FaultPolicy(), metered=True,
            time_scale=0.0,
        )
        rngs = self._rngs(stack)
        assert len(rngs) == 3  # retry, fault, latency
        assert all(r is rngs[0] for r in rngs)  # one stream, one knob
        assert rngs[0].random() == random.Random(1234).random()

    def test_explicit_rng_overrides_config_seed(self):
        rng = random.Random(7)
        stack = build_transport(
            InMemoryObjectStore(), GinjaConfig(seed=1), rng=rng,
            tracing=False,
        )
        assert stack._rng is rng
