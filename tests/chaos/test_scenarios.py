"""Scenario model: compilation onto the transport layers, shrinking."""

from __future__ import annotations

import random

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import CloudUnavailable, ConfigError
from repro.chaos import SCENARIOS, ErrorBurst, Scenario
from repro.chaos.scenarios import _UNBOUNDED, BurstyFaultPolicy
from repro.cloud.faults import Throttle
from repro.cloud.memory import InMemoryObjectStore
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE


class TestCatalog:
    def test_catalog_names_match_keys(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_standard_scenarios_present(self):
        assert {"baseline", "blackout", "brownout", "flaky", "throttled",
                "latency-storm"} <= set(SCENARIOS)

    def test_every_scenario_has_description(self):
        assert all(s.description for s in SCENARIOS.values())


class TestCompilation:
    def test_loss_bound_is_nominal_s_plus_b_plus_one(self):
        scenario = Scenario(name="x", batch=7, safety=31)
        assert scenario.loss_bound() == 31 + 7 + 1

    def test_seed_flows_into_ginja_config(self):
        config = Scenario(name="x").ginja_config(seed=1234)
        assert config.seed == 1234

    def test_unbounded_safety_mutation_disables_backpressure_only(self):
        scenario = Scenario(name="x", safety=20, unbounded_safety=True)
        config = scenario.ginja_config(seed=0)
        assert config.safety == _UNBOUNDED
        assert config.safety_timeout == _UNBOUNDED
        # ...but the analytic bound still budgets the nominal S: this is
        # what gives the RPO oracle teeth against the mutant.
        assert scenario.loss_bound() == 26
        assert config.batch == scenario.batch

    def test_encode_dispatch_flows_into_ginja_config(self):
        assert Scenario(name="x").ginja_config(0).encode_dispatch == "adaptive"
        pinned = Scenario(name="x", encode_dispatch="pool")
        assert pinned.ginja_config(0).encode_dispatch == "pool"

    def test_profiles(self):
        assert Scenario(name="x").profile is POSTGRES_PROFILE
        assert Scenario(name="x", dbms="mysql").profile is MYSQL_PROFILE
        with pytest.raises(ConfigError):
            _ = Scenario(name="x", dbms="oracle").profile

    def test_fault_policy_compiles_outages_and_throttle(self):
        scenario = Scenario(
            name="x", outages=((1.0, 2.0), (5.0, 6.0)),
            error_rate=0.1, throttle=Throttle(rate=2.0, burst=4.0),
        )
        policy = scenario.fault_policy()
        assert not isinstance(policy, BurstyFaultPolicy)
        assert [(o.start, o.end) for o in policy.outages] \
            == [(1.0, 2.0), (5.0, 6.0)]
        assert policy.error_rate == 0.1
        assert policy.throttle is scenario.throttle

    def test_bursts_compile_to_bursty_policy(self):
        burst = ErrorBurst(start=1.0, end=3.0, rate=1.0)
        policy = Scenario(name="x", error_bursts=(burst,)).fault_policy()
        assert isinstance(policy, BurstyFaultPolicy)
        with pytest.raises(CloudUnavailable):
            policy.check("PUT", 2.0, random.Random(0))
        policy.check("PUT", 4.0, random.Random(0))  # outside the burst

    def test_build_cloud_runs_on_the_drill_clock(self):
        clock = ManualClock()
        cloud = Scenario(name="x").build_cloud(
            InMemoryObjectStore(), clock, seed=3
        )
        assert cloud.clock is clock
        cloud.put("k", b"v")
        assert cloud.get("k") == b"v"


class TestErrorBurst:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ErrorBurst(start=2.0, end=1.0, rate=0.5)
        with pytest.raises(ConfigError):
            ErrorBurst(start=0.0, end=1.0, rate=0.0)
        with pytest.raises(ConfigError):
            ErrorBurst(start=0.0, end=1.0, rate=1.5)

    def test_covers_is_inclusive(self):
        burst = ErrorBurst(start=1.0, end=2.0, rate=0.5)
        assert burst.covers(1.0) and burst.covers(2.0)
        assert not burst.covers(0.99) and not burst.covers(2.01)


class TestShrinking:
    def test_baseline_still_offers_workload_shrinks(self):
        names = SCENARIOS["baseline"].simplifications()
        assert names  # checkpoint drop + row halving at minimum

    def test_each_simplification_removes_exactly_one_knob(self):
        scenario = SCENARIOS["flaky"]
        for candidate in scenario.simplifications():
            assert candidate != scenario
            # A candidate never *adds* hostile behaviour.
            assert len(candidate.outages) <= len(scenario.outages)
            assert len(candidate.error_bursts) <= len(scenario.error_bursts)
            assert candidate.rows <= scenario.rows

    def test_fully_shrunk_scenario_reaches_fixpoint(self):
        scenario = Scenario(name="x", rows=10, checkpoint_at=None)
        assert scenario.simplifications() == []

    def test_describe_lists_only_non_defaults(self):
        description = SCENARIOS["blackout"].describe()
        assert description["name"] == "blackout"
        assert "outages" in description
        assert "error_rate" not in description
