"""Oracle soundness — including the mutation checks proving they bite."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common import events
from repro.common.events import Event
from repro.chaos import SCENARIOS, run_drill
from repro.chaos.campaign import mutation_check
from repro.chaos.oracles import (
    Disaster,
    _billing_oracle,
    _gc_oracle,
    run_oracles,
)
from repro.chaos.scenarios import Scenario
from repro.core.data_model import CHECKPOINT, DUMP, DBObjectMeta, WALObjectMeta
from repro.db.profiles import POSTGRES_PROFILE


def _gc_event(key: str, ok: bool = True) -> Event:
    return Event(kind=events.GC_DELETE, key=key, ok=ok)


def _disaster(snapshot: dict, evts: list[Event]) -> Disaster:
    return Disaster(
        scenario=Scenario(name="synthetic"), seed=0,
        snapshot=snapshot, committed={}, events=evts,
    )


class TestGCOracle:
    def test_covered_wal_delete_passes(self):
        checkpoint = DBObjectMeta(ts=10, type=CHECKPOINT, size=3)
        snapshot = {checkpoint.key: b"x"}
        deleted = WALObjectMeta(ts=7, filename="wal", offset=0)
        verdict = _gc_oracle(_disaster(snapshot, [_gc_event(deleted.key)]))
        assert verdict.ok

    def test_uncovered_wal_delete_fails(self):
        """A GC bug that deletes a WAL object *beyond* the checkpoint
        frontier destroys committed updates — the oracle must see it."""
        checkpoint = DBObjectMeta(ts=10, type=CHECKPOINT, size=3)
        snapshot = {checkpoint.key: b"x"}
        deleted = WALObjectMeta(ts=11, filename="wal", offset=0)
        verdict = _gc_oracle(_disaster(snapshot, [_gc_event(deleted.key)]))
        assert not verdict.ok
        assert deleted.key in verdict.detail

    def test_incomplete_group_does_not_cover(self):
        """A half-uploaded checkpoint (part 0 of 2) is unusable for
        recovery, so WAL deletes against its frontier are violations."""
        part = DBObjectMeta(ts=10, type=CHECKPOINT, size=3,
                            part=0, nparts=2)
        snapshot = {part.key: b"x"}
        deleted = WALObjectMeta(ts=7, filename="wal", offset=0)
        verdict = _gc_oracle(_disaster(snapshot, [_gc_event(deleted.key)]))
        assert not verdict.ok

    def test_db_delete_requires_superseding_dump(self):
        old = DBObjectMeta(ts=5, type=CHECKPOINT, size=3, seq=1)
        dump = DBObjectMeta(ts=9, type=DUMP, size=3, seq=2)
        verdict = _gc_oracle(
            _disaster({dump.key: b"x"}, [_gc_event(old.key)])
        )
        assert verdict.ok
        verdict = _gc_oracle(_disaster({}, [_gc_event(old.key)]))
        assert not verdict.ok

    def test_failed_deletes_are_ignored(self):
        deleted = WALObjectMeta(ts=99, filename="wal", offset=0)
        verdict = _gc_oracle(
            _disaster({}, [_gc_event(deleted.key, ok=False)])
        )
        assert verdict.ok


class TestBillingOracle:
    def test_missing_meter_fails(self):
        assert not _billing_oracle(_disaster({}, [])).ok

    def test_oversized_batch_fails(self):
        from repro.cloud.metering import RequestMeter

        disaster = _disaster({}, [Event(kind=events.WAL_BATCH, count=6)])
        disaster.meter = RequestMeter()
        verdict = _billing_oracle(disaster)
        assert not verdict.ok
        assert "exceeded B=5" in verdict.detail

    def test_within_envelope_passes(self):
        from repro.cloud.metering import RequestMeter

        disaster = _disaster({}, [])
        disaster.meter = RequestMeter()
        assert _billing_oracle(disaster).ok


class TestDrillOracles:
    def test_healthy_drill_passes_every_oracle(self):
        result = run_drill(SCENARIOS["baseline"], "during-gc", seed=0)
        assert result.ok, result.summary()
        assert [v.name for v in result.verdicts] \
            == ["rpo", "recovery", "gc", "billing", "liveness"]

    def test_end_of_run_point_uses_fallback_snapshot(self):
        result = run_drill(SCENARIOS["baseline"], "end-of-run", seed=0)
        assert not result.triggered
        assert result.ok, result.summary()

    def test_oracles_judge_disaster_not_live_state(self):
        """run_oracles works from the frozen Disaster alone."""
        result = run_drill(SCENARIOS["baseline"], "post-ack", seed=1)
        assert result.ok, result.summary()

    @pytest.mark.parametrize("dispatch", ["adaptive", "inline", "pool"])
    def test_rpo_holds_under_every_dispatch_policy(self, dispatch):
        """The S+B+1 loss bound must survive the dispatch controller:
        inline, pooled, and the adaptive policy that may switch between
        them mid-run (the consecutive-timestamp unlock rule is the
        invariant the controller never weakens)."""
        scenario = replace(
            SCENARIOS["baseline"],
            name=f"baseline-{dispatch}",
            encode_dispatch=dispatch,
        )
        for point in ("mid-batch", "post-ack"):
            result = run_drill(scenario, point, seed=3)
            assert result.ok, result.summary()


class TestMutationCheck:
    """Acceptance: disabling the Safety back-pressure (unbounded S under
    a permanent outage) must make the RPO oracle report a violation,
    while the bounded control drill stays green."""

    def test_rpo_oracle_has_teeth(self):
        outcome = mutation_check(seed=0)
        assert outcome["detected"], (
            outcome["mutant"].summary(),
            outcome["control"].summary(),
        )
        mutant_rpo = next(v for v in outcome["mutant"].verdicts
                          if v.name == "rpo")
        assert not mutant_rpo.ok
        assert "bound S+B+1 = 26" in mutant_rpo.detail
        # The mutant's damage is *only* an RPO violation: the disaster
        # image itself still recovers to a consistent database.
        others = [v for v in outcome["mutant"].verdicts if v.name != "rpo"]
        assert all(v.ok for v in others)
