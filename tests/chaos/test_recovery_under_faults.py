"""Parallel recovery under injected cloud faults.

The standby recovering *during* the incident that killed the primary is
exactly when the cloud is most likely to throw errors.  These drills run
the parallel recovery engine against a :class:`BurstyFaultPolicy` store:
every downloader's GETs must ride the retry transport through the burst,
and the restored database must still satisfy the RPO promise (nothing
acknowledged and drained may be lost).
"""

from __future__ import annotations

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import CloudError
from repro.common.units import KiB
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.chaos.scenarios import BurstyFaultPolicy, ErrorBurst
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False)
ROWS = 30


def _dead_primary_bucket():
    """Protect a database, drain every row, then lose the primary."""
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    bucket = InMemoryObjectStore()
    ginja = Ginja(disk, bucket, POSTGRES_PROFILE,
                  GinjaConfig(batch=4, safety=40, batch_timeout=0.05))
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
    for i in range(ROWS):
        db.put("t", f"k{i}", f"v{i}".encode())
    assert ginja.drain(timeout=10.0)
    ginja.crash()
    return bucket


class TestRecoveryThroughAnErrorBurst:
    def test_parallel_recovery_retries_through_the_burst(self):
        bucket = _dead_primary_bucket()
        clock = ManualClock()
        # Every request fails 60% of the time for the first two minutes
        # of store time.  Retry backoffs sleep on the same virtual clock,
        # so the engine rides *through* the burst instead of timing out.
        sim = SimulatedCloud(
            backend=bucket,
            faults=BurstyFaultPolicy(
                bursts=(ErrorBurst(start=0.0, end=120.0, rate=0.6),)
            ),
            time_scale=1.0, clock=clock, seed=7,
        )
        config = GinjaConfig(downloaders=4, prefetch_window=8,
                             max_retries=200, retry_backoff=0.5)
        ginja2, report = Ginja.recover(
            sim, MemoryFileSystem(), POSTGRES_PROFILE, config, clock=clock
        )
        try:
            db2 = MiniDB.open(ginja2.fs, POSTGRES_PROFILE, ENGINE)
            # RPO oracle: everything acknowledged before the disaster was
            # drained to the cloud, so nothing may be lost.
            lost = [i for i in range(ROWS)
                    if db2.get("t", f"k{i}") != f"v{i}".encode()]
            assert lost == []
        finally:
            ginja2.stop()
        # The burst actually bit (and was absorbed as retries), and the
        # recovery GETs went through the metered transport.
        assert ginja2.stats.upload_retries > 0
        assert sim.meter.gets.count >= report.dump_parts + \
            report.wal_objects_applied
        assert report.bytes_downloaded > 0

    def test_burst_outlasting_the_retry_budget_fails_cleanly(self):
        bucket = _dead_primary_bucket()
        clock = ManualClock()
        sim = SimulatedCloud(
            backend=bucket,
            faults=BurstyFaultPolicy(
                bursts=(ErrorBurst(start=0.0, end=3600.0, rate=1.0),)
            ),
            time_scale=1.0, clock=clock, seed=7,
        )
        config = GinjaConfig(downloaders=4, max_retries=3,
                             retry_backoff=0.01)
        # Deterministic failure, not a hang: the exhausted retry budget
        # surfaces as a cloud error (the poison discipline propagates a
        # worker's failure instead of deadlocking the apply thread).
        with pytest.raises(CloudError):
            Ginja.recover(sim, MemoryFileSystem(), POSTGRES_PROFILE,
                          config, clock=clock)
