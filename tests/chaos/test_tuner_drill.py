"""The latency-shift tuner chaos drill (CI's tuner-smoke contract)."""

from __future__ import annotations

import json

import pytest

from repro.chaos.tuner_drill import run_tuner_drill


@pytest.fixture(scope="module")
def drill_result():
    return run_tuner_drill(seed=0)


class TestDrill:
    def test_every_check_passes(self, drill_result):
        assert drill_result.ok, (
            drill_result.summary(), drill_result.details,
        )
        assert drill_result.checks == {
            "converged": True,
            "batch_shrank": True,
            "reconverged": True,
            "budget_respected": True,
            "survived_shift": True,
            "loss_bound_preserved": True,
            "rpo_zero": True,
        }

    def test_controller_actually_moved(self, drill_result):
        snap = drill_result.tuner
        assert snap["retunes"] >= 1
        assert snap["batch"] < snap["nominal_batch"]
        assert snap["batch"] <= snap["safety"] <= snap["nominal_safety"]

    def test_latency_settles_inside_the_band(self, drill_result):
        snap = drill_result.tuner
        band_top = drill_result.target * drill_result.hysteresis
        assert snap["latency_ewma"] is not None
        assert snap["latency_ewma"] <= band_top

    def test_projected_spend_under_budget(self, drill_result):
        projected = drill_result.tuner["projected_monthly_dollars"]
        assert projected is not None
        assert projected <= drill_result.budget

    def test_transitions_stay_inside_the_loss_bound(self, drill_result):
        nominal_b = drill_result.batch
        nominal_s = drill_result.safety
        assert drill_result.transitions
        for t in drill_result.transitions:
            assert 1 <= t["to_batch"] <= nominal_b
            assert t["to_batch"] <= t["to_safety"] <= nominal_s
            assert t["reason"]

    def test_canonical_report_is_config_and_booleans_only(self, drill_result):
        """The CI determinism gate ``cmp``s two canonical reports, so
        nothing pump-timing-dependent (EWMAs, dollars, timestamps) may
        leak into them — only config echoes and pass/fail booleans."""
        canonical = drill_result.canonical()
        json.dumps(canonical)  # must be serializable as-is
        assert canonical["status"] == "pass"
        assert canonical["seed"] == 0
        for value in canonical.values():
            assert isinstance(value, (bool, int, float, str, dict))
        for value in canonical["checks"].values():
            assert isinstance(value, bool)

    def test_summary_is_one_line(self, drill_result):
        summary = drill_result.summary()
        assert "\n" not in summary
        assert "tuner" in summary
