"""The provider-outage chaos drill (CI's placement-smoke contract)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.chaos.placement_drill import run_placement_drill


@pytest.fixture(scope="module")
def drill_result():
    return run_placement_drill(seed=0, rows=20)


class TestDrill:
    def test_every_check_passes(self, drill_result):
        assert drill_result.ok, (
            drill_result.summary(), drill_result.details,
        )
        assert drill_result.checks == {
            "survived_kill": True,
            "rpo_zero": True,
            "fsck_survivors_clean": True,
            "quorum_gate_refuses": True,
            "failover_promotes": True,
            "repair_converges": True,
            "repair_egress_billed": True,
        }

    def test_commits_span_the_kill(self, drill_result):
        assert drill_result.committed == 20
        assert 0 < drill_result.kill_row < drill_result.rows

    def test_bill_attributes_repair_egress(self, drill_result):
        bill = drill_result.bill
        assert bill is not None
        assert bill.repair_egress_dollars > 0
        sources = [
            b.provider for b in bill.providers if b.repair_egress_bytes
        ]
        # The wiped provider is the sink, never a source of repair reads.
        assert sources and drill_result.killed not in sources

    def test_canonical_is_json_stable_and_boolean_only(self, drill_result):
        canonical = drill_result.canonical()
        blob = json.dumps(canonical, sort_keys=True)
        assert json.loads(blob) == canonical
        assert all(isinstance(v, bool) for v in canonical["checks"].values())
        assert canonical["status"] == "pass"

    def test_no_leaked_threads(self, drill_result):
        for thread in threading.enumerate():
            assert not thread.name.startswith(
                ("placement", "ginja", "drill")
            ), thread.name
