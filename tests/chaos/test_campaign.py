"""Campaign grid, report determinism, and failure shrinking."""

from __future__ import annotations

from dataclasses import replace

from repro.chaos import SCENARIOS, run_campaign, shrink_failure
from repro.chaos.campaign import DrillSpec, expand_grid
from repro.chaos.crashpoints import CRASH_POINTS, STANDARD_TAXONOMY
from repro.chaos.scenarios import Scenario

#: A grid small enough for unit tests but crossing a real fault
#: scenario with two distinct pipeline stages.
SMALL = dict(crash_points=["pre-put", "during-gc"], seeds=range(2), jobs=4)


class TestGrid:
    def test_explicit_points_override_scenario_preferences(self):
        specs = expand_grid([SCENARIOS["blackout"]], ["pre-put"], [0])
        assert [s.crash_point.name for s in specs] == ["pre-put"]

    def test_scenario_preferences_else_standard_taxonomy(self):
        specs = expand_grid(
            [SCENARIOS["baseline"], SCENARIOS["blackout"]], None, [0]
        )
        names = [s.crash_point.name for s in specs]
        assert names[:5] == list(STANDARD_TAXONOMY)
        assert names[5:] == list(SCENARIOS["blackout"].crash_points)

    def test_grid_is_scenario_major_seed_minor(self):
        specs = expand_grid([SCENARIOS["baseline"]], ["pre-put"], [0, 1])
        assert [(s.crash_point.name, s.seed) for s in specs] \
            == [("pre-put", 0), ("pre-put", 1)]


class TestCampaign:
    def test_small_campaign_green(self):
        report = run_campaign([SCENARIOS["baseline"]], **SMALL)
        assert report.ok
        assert len(report.results) == 4
        assert report.failures == []
        assert "0 failing" in report.render()

    def test_reports_are_byte_identical_across_runs(self):
        scenarios = [SCENARIOS["baseline"], SCENARIOS["flaky"]]
        first = run_campaign(scenarios, **SMALL).to_json()
        second = run_campaign(scenarios, **SMALL).to_json()
        assert first == second

    def test_canonical_excludes_racy_fields(self):
        report = run_campaign([SCENARIOS["baseline"]], **SMALL)
        drill = report.canonical()["drills"][0]
        assert set(drill) == {"scenario", "crash_point", "seed", "status",
                              "oracles"}

    def test_progress_callback_sees_every_drill(self):
        lines: list[str] = []
        run_campaign([SCENARIOS["baseline"]],
                     crash_points=["pre-put"], seeds=range(2), jobs=2,
                     progress=lines.append)
        assert len(lines) == 2


class TestShrinking:
    """Drive shrinking with a scenario that deterministically fails:
    a zero-dollar budget trips the billing oracle on every drill."""

    def _failing(self) -> Scenario:
        return replace(
            SCENARIOS["flaky"], name="broke", budget_dollars=0.0,
        )

    def test_shrink_reaches_a_simpler_still_failing_scenario(self):
        spec = DrillSpec(self._failing(), CRASH_POINTS["pre-put"], 0)
        minimal = shrink_failure(spec)
        assert minimal.name == "broke-minimal"
        # The failure has nothing to do with the fault schedule, so
        # shrinking strips it entirely.
        assert minimal.error_rate == 0.0
        assert minimal.error_bursts == ()
        assert minimal.rows < spec.scenario.rows

    def test_campaign_reports_minimal_repro(self):
        report = run_campaign(
            [self._failing()], crash_points=["pre-put"], seeds=[0], jobs=1,
        )
        assert not report.ok
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure["drill"] == "broke/pre-put/0"
        assert failure["oracles"]["billing"] is False
        assert failure["minimal_scenario"]["name"] == "broke-minimal"
        assert "billing" in report.render()
