"""Crash points, the injector, and the pipeline events they ride on."""

from __future__ import annotations

import threading

from repro.common import events
from repro.common.events import Event, EventBus
from repro.common.units import KiB
from repro.chaos import CRASH_POINTS, CrashPoint, CrashPointInjector, EventLog
from repro.chaos.crashpoints import STANDARD_TAXONOMY, queue_depth_point
from repro.cloud.memory import InMemoryObjectStore
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


def _event(kind, **kw):
    return Event(kind=kind, at=0.0, **kw)


class TestCrashPoint:
    def test_catalog_covers_every_pipeline_stage(self):
        assert set(STANDARD_TAXONOMY) <= set(CRASH_POINTS)
        assert {"backpressure", "end-of-run"} <= set(CRASH_POINTS)

    def test_matches_filters_kind_prefix_count_and_ok(self):
        point = CrashPoint(name="x", kind=events.PUT_START,
                           key_prefix="WAL/")
        assert point.matches(_event(events.PUT_START, key="WAL/000_f_0"))
        assert not point.matches(_event(events.PUT_START, key="DB/x"))
        assert not point.matches(_event(events.PUT_END, key="WAL/000_f_0"))

        depth = queue_depth_point(10)
        assert depth.kind == events.QUEUE_DEPTH
        assert depth.matches(_event(events.QUEUE_DEPTH, count=10))
        assert not depth.matches(_event(events.QUEUE_DEPTH, count=9))

        gc = CRASH_POINTS["during-gc"]
        assert gc.matches(_event(events.GC_DELETE, key="WAL/0", ok=True))
        assert not gc.matches(_event(events.GC_DELETE, key="WAL/0",
                                     ok=False))


class TestInjector:
    def test_fires_on_nth_occurrence_and_freezes_state(self):
        bus = EventBus()
        state = {"objects": 0}
        log = EventLog().attach(bus)
        point = CrashPoint(name="x", kind=events.WAL_BATCH, occurrence=3)
        injector = CrashPointInjector(
            point, lambda: {"n": bytes([state["objects"]])}, log=log
        ).attach(bus)

        for _ in range(2):
            state["objects"] += 1
            bus.emit(events.WAL_BATCH, count=5)
        assert not injector.fired

        state["objects"] += 1
        bus.emit(events.WAL_BATCH, count=5)
        assert injector.fired
        assert injector.snapshot == {"n": bytes([3])}
        # The log subscribed first, so the trigger event is in-record.
        assert injector.event_index == 3
        assert injector.trigger_event.kind == events.WAL_BATCH

        # Further matches never overwrite the frozen disaster.
        state["objects"] += 1
        bus.emit(events.WAL_BATCH, count=5)
        assert injector.snapshot == {"n": bytes([3])}
        assert injector.event_index == 3

    def test_wait_unblocks_another_thread(self):
        bus = EventBus()
        injector = CrashPointInjector(
            CrashPoint(name="x", kind=events.OUTAGE), dict
        ).attach(bus)
        seen = threading.Event()

        def waiter():
            if injector.wait(5.0):
                seen.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        bus.emit(events.OUTAGE)
        thread.join(5.0)
        assert seen.is_set()

    def test_event_log_upto(self):
        log = EventLog()
        for index in range(4):
            log(_event(events.RETRY, attempt=index))
        assert len(log) == 4
        assert [e.attempt for e in log.upto(2)] == [0, 1]
        assert len(log.upto()) == 4


class TestPipelineEventPlumbing:
    """The events crashpoints ride on are emitted by the real pipeline
    (satellite of this PR: no polling of pipeline internals)."""

    def test_queue_depth_and_waiter_unlock_emitted(self):
        engine = EngineConfig(wal_segment_size=64 * KiB,
                              auto_checkpoint=False)
        disk = MemoryFileSystem()
        MiniDB.create(disk, POSTGRES_PROFILE, engine).close()
        ginja = Ginja(disk, InMemoryObjectStore(), POSTGRES_PROFILE,
                      GinjaConfig(batch=5, safety=50, batch_timeout=0.02,
                                  safety_timeout=5.0))
        ginja.start(mode="boot")
        log = EventLog().attach(ginja.bus)
        db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, engine)
        for index in range(20):
            db.put("t", f"k{index}", b"v")
        assert ginja.drain(timeout=10.0)
        ginja.stop()
        kinds = {event.kind for event in log.upto()}
        assert events.QUEUE_DEPTH in kinds
        assert events.WAITER_UNLOCK in kinds
        depths = [e.count for e in log.upto()
                  if e.kind == events.QUEUE_DEPTH]
        assert max(depths) >= 1
        # After a full drain the last unlock leaves an empty queue.
        unlocks = [e.count for e in log.upto()
                   if e.kind == events.WAITER_UNLOCK]
        assert unlocks[-1] == 0
