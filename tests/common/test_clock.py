"""Clock behaviour."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.clock import ManualClock, MonotonicClock


class TestMonotonicClock:
    def test_now_advances(self):
        clock = MonotonicClock()
        a = clock.now()
        time.sleep(0.002)
        assert clock.now() > a

    def test_sleep_zero_and_negative_return_immediately(self):
        clock = MonotonicClock()
        start = time.monotonic()
        clock.sleep(0)
        clock.sleep(-1)
        assert time.monotonic() - start < 0.05


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(start=42.0).now() == 42.0

    def test_sleep_advances_instead_of_blocking(self):
        clock = ManualClock()
        wall = time.monotonic()
        clock.sleep(1000)
        assert time.monotonic() - wall < 0.1
        assert clock.now() == 1000

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().sleep(-1)

    def test_wait_until_wakes_on_advance(self):
        clock = ManualClock()
        reached = []

        def waiter():
            reached.append(clock.wait_until(5.0, timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        clock.advance(5.0)
        thread.join(timeout=5.0)
        assert reached == [True]

    def test_wait_until_times_out(self):
        clock = ManualClock()
        assert clock.wait_until(1.0, timeout=0.05) is False
