"""The framed binary codec everything serializes through."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import IntegrityError
from repro.common.serialize import (
    pack_bytes,
    pack_kv_pairs,
    pack_str,
    pack_u32,
    pack_u64,
    take_bytes,
    take_kv_pairs,
    take_str,
    take_u32,
    take_u64,
)


class TestScalars:
    def test_u32_roundtrip(self):
        buf = pack_u32(0) + pack_u32(2**32 - 1)
        value, pos = take_u32(buf, 0)
        assert value == 0
        value, pos = take_u32(buf, pos)
        assert value == 2**32 - 1 and pos == len(buf)

    def test_u64_roundtrip(self):
        buf = pack_u64(2**53 + 7)
        assert take_u64(buf, 0) == (2**53 + 7, 8)

    def test_truncated_scalars_raise(self):
        with pytest.raises(IntegrityError):
            take_u32(b"\x01\x02", 0)
        with pytest.raises(IntegrityError):
            take_u64(b"\x01" * 7, 0)


class TestBytesAndStrings:
    def test_bytes_roundtrip(self):
        buf = pack_bytes(b"hello") + pack_bytes(b"")
        first, pos = take_bytes(buf, 0)
        second, pos = take_bytes(buf, pos)
        assert (first, second) == (b"hello", b"")

    def test_str_roundtrip_unicode(self):
        buf = pack_str("ginja — жинжа — 🍒")
        assert take_str(buf, 0)[0] == "ginja — жинжа — 🍒"

    def test_truncated_payload_raises(self):
        buf = pack_bytes(b"full-length")[:-3]
        with pytest.raises(IntegrityError):
            take_bytes(buf, 0)


class TestKVPairs:
    def test_roundtrip(self):
        pairs = [("base/t", b"page"), ("pg_control", b""), ("x", b"\x00\xff")]
        decoded, end = take_kv_pairs(pack_kv_pairs(pairs))
        assert decoded == pairs

    def test_empty(self):
        decoded, end = take_kv_pairs(pack_kv_pairs([]))
        assert decoded == [] and end == 4


@given(st.lists(st.tuples(st.text(max_size=30), st.binary(max_size=200)),
                max_size=15))
def test_kv_pairs_property(pairs):
    decoded, _ = take_kv_pairs(pack_kv_pairs(pairs))
    assert decoded == pairs


@given(st.binary(max_size=100), st.integers(min_value=0, max_value=120))
def test_take_bytes_never_overreads(buf, offset):
    try:
        value, end = take_bytes(buf, offset)
    except IntegrityError:
        return
    assert end <= len(buf)
    assert isinstance(value, bytes)
