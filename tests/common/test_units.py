"""Unit parsing/formatting."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigError
from repro.common.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    format_duration,
    parse_bytes,
    parse_duration,
)


class TestParseBytes:
    def test_plain_int_passthrough(self):
        assert parse_bytes(4096) == 4096

    def test_bare_number_is_bytes(self):
        assert parse_bytes("512") == 512

    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("1k", KiB),
            ("8K", 8 * KiB),
            ("8kb", 8 * KiB),
            ("16MB", 16 * MiB),
            ("16MiB", 16 * MiB),
            ("1.5g", int(1.5 * GiB)),
            ("2TB", 2 * 1024 * GiB),
            ("0b", 0),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_bytes(text) == expected

    def test_fractional_kilobytes(self):
        assert parse_bytes("0.5k") == 512

    @pytest.mark.parametrize("bad", ["", "abc", "12xB", "-5k", "1 2k"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            parse_bytes(bad)


class TestFormatBytes:
    def test_small_values_are_plain_bytes(self):
        assert format_bytes(0) == "0B"
        assert format_bytes(512) == "512B"

    def test_binary_suffixes(self):
        assert format_bytes(16 * MiB) == "16.0MiB"
        assert format_bytes(1536) == "1.5KiB"
        assert format_bytes(3 * GiB) == "3.0GiB"

    @given(st.integers(min_value=0, max_value=2**50))
    def test_always_produces_a_suffix(self, n):
        text = format_bytes(n)
        assert any(text.endswith(s) for s in ("B", "KiB", "MiB", "GiB", "TiB"))


class TestParseDuration:
    def test_numeric_passthrough(self):
        assert parse_duration(2.5) == 2.5
        assert parse_duration(3) == 3.0

    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("200ms", 0.2),
            ("5s", 5.0),
            ("2m", 120.0),
            ("1.5h", 5400.0),
            ("1d", 86400.0),
            ("10us", 1e-5),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_rejects_unknown_unit(self):
        with pytest.raises(ConfigError):
            parse_duration("5 fortnights")


class TestFormatDuration:
    @pytest.mark.parametrize(
        ("seconds", "expected"),
        [
            (0.0000005, "0us"),
            (0.0005, "500us"),
            (0.05, "50.0ms"),
            (5.0, "5.0s"),
            (300, "5.0m"),
            (7200, "2.0h"),
        ],
    )
    def test_rendering(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_durations(self):
        assert format_duration(-5) == "-5.0s"
