"""Torn writes at power loss, and InnoDB's doublewrite buffer."""

from __future__ import annotations

import pytest

from repro.common.errors import FileSystemError
from repro.common.units import KiB
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.storage.interposer import FSInterceptor, InterposedFS
from repro.storage.memory import MemoryFileSystem


def pg_config(**kw):
    return EngineConfig(wal_segment_size=64 * KiB, auto_checkpoint=False, **kw)


def my_config(**kw):
    return EngineConfig(wal_segment_size=16 * KiB, auto_checkpoint=False, **kw)


class TestTornWALWrites:
    def test_torn_commit_write_is_detected_by_redo(self):
        """Power fails mid-WAL-page write: the half-written record fails
        its CRC and recovery restores exactly the previously committed
        state."""
        fs = MemoryFileSystem()
        db = MiniDB.create(fs, POSTGRES_PROFILE, pg_config())
        for i in range(10):
            db.put("t", f"good{i}", b"v")
        fs.tear_next_write(37)  # power loss 37 bytes into the next page
        with pytest.raises(FileSystemError):
            db.put("t", "torn", b"x" * 100)
        db.crash()
        recovered = MiniDB.open(fs, POSTGRES_PROFILE, pg_config())
        for i in range(10):
            assert recovered.get("t", f"good{i}") == b"v"
        assert recovered.get("t", "torn") is None

    def test_torn_write_never_fabricates_rows(self):
        fs = MemoryFileSystem()
        db = MiniDB.create(fs, POSTGRES_PROFILE, pg_config())
        db.put("t", "k", b"committed")
        fs.tear_next_write(5)
        with pytest.raises(FileSystemError):
            db.put("t", "k", b"replacement")
        db.crash()
        recovered = MiniDB.open(fs, POSTGRES_PROFILE, pg_config())
        assert recovered.get("t", "k") == b"committed"

    def test_engine_usable_check_after_io_error(self):
        """The engine survives an I/O error on a non-torn path: later
        commits (after the fault clears) still work."""
        fs = MemoryFileSystem()
        db = MiniDB.create(fs, POSTGRES_PROFILE, pg_config())
        fs.tear_next_write(0)
        with pytest.raises(FileSystemError):
            db.put("t", "a", b"1")
        # The engine is not crashed; the WAL tail is still buffered, so
        # the next successful flush repairs the torn page.
        db.put("t", "b", b"2")
        assert db.get("t", "b") == b"2"


class RecordingWrites(FSInterceptor):
    def __init__(self):
        self.writes: list[tuple[str, int, int]] = []

    def after_write(self, path, offset, data):
        self.writes.append((path, offset, len(data)))


class TestDoublewrite:
    def _run(self, doublewrite: bool):
        inner = MemoryFileSystem()
        recorder = RecordingWrites()
        fs = InterposedFS(inner, recorder)
        db = MiniDB.create(fs, MYSQL_PROFILE, my_config(doublewrite=doublewrite))
        for i in range(30):
            db.put("t", f"k{i}", b"x" * 400)
        recorder.writes.clear()
        db.checkpoint()
        return db, recorder.writes

    def test_doublewrite_stages_pages_in_ibdata(self):
        _db, writes = self._run(doublewrite=True)
        staged = [w for w in writes if w[0] == "ibdata1" and w[1] >= 4096]
        table_writes = [w for w in writes if w[0].endswith(".ibd")]
        assert staged, "no doublewrite staging writes observed"
        assert len(staged) == len(table_writes)

    def test_doublewrite_disabled_writes_once(self):
        _db, writes = self._run(doublewrite=False)
        staged = [w for w in writes if w[0] == "ibdata1" and w[1] >= 4096]
        assert staged == []

    def test_recovery_unaffected_by_doublewrite(self):
        inner = MemoryFileSystem()
        db = MiniDB.create(inner, MYSQL_PROFILE, my_config(doublewrite=True))
        for i in range(30):
            db.put("t", f"k{i}", b"x" * 400)
        db.checkpoint()
        for i in range(30, 40):
            db.put("t", f"k{i}", b"x" * 400)
        db.crash()
        recovered = MiniDB.open(inner, MYSQL_PROFILE, my_config(doublewrite=True))
        for i in range(40):
            assert recovered.get("t", f"k{i}") == b"x" * 400

    def test_postgres_ignores_doublewrite_flag(self):
        fs = MemoryFileSystem()
        db = MiniDB.create(fs, POSTGRES_PROFILE, pg_config(doublewrite=True))
        db.put("t", "k", b"v")
        db.checkpoint()  # must not touch any ibdata file
        assert not fs.exists("ibdata1")
