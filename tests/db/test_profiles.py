"""DBMSProfile unit coverage: naming, classification inputs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.units import KiB, MiB
from repro.db.profiles import (
    CheckpointStyle,
    MYSQL_PROFILE,
    POSTGRES_PROFILE,
)


class TestPostgresNaming:
    def test_segment_names_are_24_hex(self):
        path = POSTGRES_PROFILE.wal_path(255)
        assert path == "pg_xlog/0000000000000000000000FF"
        assert len(path.split("/")[1]) == 24

    def test_wal_index_roundtrip(self):
        for index in (0, 1, 4095, 2**40):
            assert POSTGRES_PROFILE.wal_index(
                POSTGRES_PROFILE.wal_path(index)
            ) == index

    def test_table_paths(self):
        assert POSTGRES_PROFILE.table_path("orders") == "base/orders"

    def test_db_file_classification(self):
        assert POSTGRES_PROFILE.is_db_file("base/orders")
        assert POSTGRES_PROFILE.is_db_file("pg_clog/0000")
        assert POSTGRES_PROFILE.is_db_file("global/pg_control")
        assert not POSTGRES_PROFILE.is_db_file("pg_xlog/" + "0" * 24)

    def test_defaults_match_postgres(self):
        assert POSTGRES_PROFILE.wal_page_size == 8 * KiB
        assert POSTGRES_PROFILE.wal_segment_size == 16 * MiB
        assert POSTGRES_PROFILE.table_page_size == 8 * KiB
        assert POSTGRES_PROFILE.checkpoint_style is CheckpointStyle.SHARP
        assert not POSTGRES_PROFILE.ring_wal


class TestMySQLNaming:
    def test_ring_file_names(self):
        assert MYSQL_PROFILE.wal_path(0) == "ib_logfile0"
        assert MYSQL_PROFILE.wal_path(1) == "ib_logfile1"
        assert MYSQL_PROFILE.wal_path(2) == "ib_logfile0"  # modulo the ring

    def test_wal_index(self):
        assert MYSQL_PROFILE.wal_index("ib_logfile1") == 1

    def test_table_paths(self):
        assert MYSQL_PROFILE.table_path("orders") == "orders.ibd"

    def test_db_file_classification(self):
        assert MYSQL_PROFILE.is_db_file("orders.ibd")
        assert MYSQL_PROFILE.is_db_file("orders.frm")
        assert MYSQL_PROFILE.is_db_file("ibdata1")
        assert not MYSQL_PROFILE.is_db_file("ib_logfile0")

    def test_defaults_match_innodb(self):
        assert MYSQL_PROFILE.wal_page_size == 512
        assert MYSQL_PROFILE.wal_segment_size == 48 * MiB
        assert MYSQL_PROFILE.table_page_size == 16 * KiB
        assert MYSQL_PROFILE.checkpoint_style is CheckpointStyle.FUZZY
        assert MYSQL_PROFILE.checkpoint_slot_offsets == (512, 1536)
        assert MYSQL_PROFILE.wal_header_size == 2 * KiB


@given(st.integers(min_value=0, max_value=2**60))
def test_pg_segment_names_sort_like_indexes(index):
    a = POSTGRES_PROFILE.wal_path(index)
    b = POSTGRES_PROFILE.wal_path(index + 1)
    assert a < b
