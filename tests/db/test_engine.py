"""MiniDB engine: transactions, checkpoints, crash recovery.

These are the load-bearing tests of the DBMS substrate: Ginja's
end-to-end RPO guarantees rest on the engine really losing uncommitted
(and un-checkpointed-but-logged-then-truncated) state and really
recovering committed state via WAL redo.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import DatabaseError, TransactionAborted
from repro.common.units import KiB
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem


def small_config(profile, **overrides):
    seg = 64 * KiB if not profile.ring_wal else 16 * KiB
    defaults = dict(
        wal_segment_size=seg, auto_checkpoint_bytes=32 * KiB, auto_checkpoint=False
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


@pytest.fixture(params=["postgres", "mysql"])
def profile(request):
    return POSTGRES_PROFILE if request.param == "postgres" else MYSQL_PROFILE


@pytest.fixture
def db(profile):
    fs = MemoryFileSystem()
    return fs, MiniDB.create(fs, profile, small_config(profile))


class TestTransactions:
    def test_commit_makes_rows_visible(self, db):
        _fs, engine = db
        with engine.begin() as txn:
            txn.put("t", "k", b"v")
        assert engine.get("t", "k") == b"v"

    def test_abort_discards_everything(self, db):
        _fs, engine = db
        txn = engine.begin()
        txn.put("t", "k", b"v")
        txn.abort()
        assert engine.get("t", "k") is None
        assert engine.stats.aborts == 1

    def test_exception_in_context_aborts(self, db):
        _fs, engine = db
        with pytest.raises(RuntimeError):
            with engine.begin() as txn:
                txn.put("t", "k", b"v")
                raise RuntimeError("boom")
        assert engine.get("t", "k") is None

    def test_read_your_writes(self, db):
        _fs, engine = db
        engine.put("t", "k", b"old")
        with engine.begin() as txn:
            txn.put("t", "k", b"new")
            assert txn.get("t", "k") == b"new"
            assert engine.get("t", "k") == b"old"  # not yet committed

    def test_read_your_deletes(self, db):
        _fs, engine = db
        engine.put("t", "k", b"v")
        with engine.begin() as txn:
            txn.delete("t", "k")
            assert txn.get("t", "k") is None

    def test_finished_txn_rejects_use(self, db):
        _fs, engine = db
        txn = engine.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.put("t", "k", b"v")

    def test_empty_commit_writes_no_wal(self, db):
        _fs, engine = db
        before = engine.lsn
        engine.begin().commit()
        assert engine.lsn == before

    def test_autocommit_helpers(self, db):
        _fs, engine = db
        engine.put("t", "k", b"v")
        engine.delete("t", "k")
        assert engine.get("t", "k") is None
        assert engine.stats.commits == 2

    def test_txids_are_unique_and_increasing(self, db):
        _fs, engine = db
        ids = [engine.begin().txid for _ in range(5)]
        assert ids == sorted(ids) and len(set(ids)) == 5


class TestDurability:
    def test_commit_flushes_wal_synchronously(self, db):
        _fs, engine = db
        engine.put("t", "k", b"v")
        assert engine._wal.flushed_lsn == engine.lsn

    def test_commit_writes_wal_pages(self, db, profile):
        fs, engine = db
        engine.put("t", "k", b"v" * 100)
        wal_files = fs.files("pg_xlog/" if not profile.ring_wal else "ib_logfile")
        assert wal_files

    def test_crash_before_any_checkpoint_recovers_all_commits(self, db, profile):
        fs, engine = db
        for i in range(20):
            engine.put("t", f"k{i}", f"v{i}".encode())
        engine.crash()
        recovered = MiniDB.open(fs, profile, small_config(profile))
        for i in range(20):
            assert recovered.get("t", f"k{i}") == f"v{i}".encode()
        assert recovered.recovered_ops == 20

    def test_uncommitted_txn_lost_on_crash(self, db, profile):
        fs, engine = db
        engine.put("t", "committed", b"yes")
        txn = engine.begin()
        txn.put("t", "uncommitted", b"no")  # never committed
        engine.crash()
        recovered = MiniDB.open(fs, profile, small_config(profile))
        assert recovered.get("t", "committed") == b"yes"
        assert recovered.get("t", "uncommitted") is None

    def test_crashed_engine_rejects_use(self, db):
        _fs, engine = db
        engine.crash()
        with pytest.raises(DatabaseError):
            engine.put("t", "k", b"v")


class TestCheckpoints:
    def test_checkpoint_persists_pages(self, db, profile):
        fs, engine = db
        engine.put("t", "k", b"v")
        engine.checkpoint()
        path = profile.table_path("t")
        assert fs.size(path) >= profile.table_page_size

    def test_checkpoint_advances_pointer(self, db):
        _fs, engine = db
        engine.put("t", "k", b"v")
        lsn_before_ckpt = engine.lsn
        engine.checkpoint()
        assert engine.last_checkpoint_lsn == lsn_before_ckpt

    def test_recovery_after_checkpoint_plus_more_commits(self, db, profile):
        fs, engine = db
        engine.put("t", "before", b"1")
        engine.checkpoint()
        engine.put("t", "after", b"2")
        engine.crash()
        recovered = MiniDB.open(fs, profile, small_config(profile))
        assert recovered.get("t", "before") == b"1"
        assert recovered.get("t", "after") == b"2"

    def test_postgres_checkpoint_drops_old_segments(self):
        fs = MemoryFileSystem()
        config = small_config(POSTGRES_PROFILE)
        engine = MiniDB.create(fs, POSTGRES_PROFILE, config)
        for i in range(300):  # spill past one 64 KiB segment
            engine.put("t", f"k{i}", b"x" * 200)
        assert len(fs.files("pg_xlog/")) > 1
        engine.checkpoint()
        assert len(fs.files("pg_xlog/")) == 1

    def test_mysql_ring_guard_forces_checkpoint(self):
        fs = MemoryFileSystem()
        config = small_config(MYSQL_PROFILE)
        engine = MiniDB.create(fs, MYSQL_PROFILE, config)
        # Write more WAL than the ring holds; the engine must checkpoint
        # itself rather than overwrite un-checkpointed log.
        for i in range(400):
            engine.put("t", f"k{i}", b"x" * 100)
        assert engine.stats.checkpoints >= 1
        engine.crash()
        recovered = MiniDB.open(fs, MYSQL_PROFILE, config)
        for i in range(400):
            assert recovered.get("t", f"k{i}") == b"x" * 100

    def test_auto_checkpoint_triggers_on_threshold(self, profile):
        fs = MemoryFileSystem()
        config = small_config(profile, auto_checkpoint=True, auto_checkpoint_bytes=4096)
        engine = MiniDB.create(fs, profile, config)
        for i in range(50):
            engine.put("t", f"k{i}", b"x" * 200)
        assert engine.stats.checkpoints >= 1

    def test_checkpoint_with_no_dirty_pages(self, db):
        _fs, engine = db
        assert engine.checkpoint()
        assert engine.stats.checkpoints == 1

    def test_updates_and_deletes_survive_checkpoint_crash_recover(self, db, profile):
        fs, engine = db
        engine.put("t", "stay", b"1")
        engine.put("t", "gone", b"2")
        engine.checkpoint()
        engine.put("t", "stay", b"updated")
        engine.delete("t", "gone")
        engine.crash()
        recovered = MiniDB.open(fs, profile, small_config(profile))
        assert recovered.get("t", "stay") == b"updated"
        assert recovered.get("t", "gone") is None


class TestCleanShutdown:
    def test_close_then_open_without_redo(self, db, profile):
        fs, engine = db
        engine.put("t", "k", b"v")
        engine.close()
        reopened = MiniDB.open(fs, profile, small_config(profile))
        assert reopened.get("t", "k") == b"v"
        # Clean shutdown = checkpoint, so nothing needed redo... except
        # the checkpoint record itself carries no ops.
        assert reopened.recovered_ops == 0

    def test_close_rejects_further_use(self, db):
        _fs, engine = db
        engine.close()
        with pytest.raises(DatabaseError):
            engine.begin()


class TestMultiTableAndConcurrency:
    def test_many_tables(self, db):
        _fs, engine = db
        for t in ("a", "b", "c"):
            engine.put(t, "k", t.encode())
        assert engine.tables() == ["a", "b", "c"]
        assert engine.row_count("a") == 1

    def test_concurrent_commits(self, db):
        import threading

        _fs, engine = db
        errors = []

        def worker(worker_id):
            try:
                for i in range(20):
                    engine.put("t", f"w{worker_id}-{i}", b"v")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert engine.row_count("t") == 80


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=15),  # key space
            st.binary(min_size=0, max_size=80),
        ),
        min_size=1,
        max_size=60,
    ),
    checkpoint_after=st.integers(min_value=0, max_value=60),
    profile_name=st.sampled_from(["postgres", "mysql"]),
)
def test_crash_recovery_equals_committed_state(ops, checkpoint_after, profile_name):
    """Property: for any committed op sequence with a checkpoint at an
    arbitrary position, crash + recover reproduces the exact final state."""
    profile = POSTGRES_PROFILE if profile_name == "postgres" else MYSQL_PROFILE
    fs = MemoryFileSystem()
    engine = MiniDB.create(fs, profile, small_config(profile))
    expected: dict[str, bytes] = {}
    for index, (kind, key_id, value) in enumerate(ops):
        key = f"k{key_id}"
        if kind == "put":
            engine.put("t", key, value)
            expected[key] = value
        else:
            engine.delete("t", key)
            expected.pop(key, None)
        if index + 1 == checkpoint_after:
            engine.checkpoint()
    engine.crash()
    recovered = MiniDB.open(fs, profile, small_config(profile))
    for key_id in range(16):
        key = f"k{key_id}"
        assert recovered.get("t", key) == expected.get(key)
