"""WAL record framing."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.db.records import (
    CheckpointRecord,
    CommitRecord,
    OpRecord,
    TYPE_DELETE,
    TYPE_PUT,
    decode_record,
)


class TestRoundTrip:
    def test_put_record(self):
        rec = OpRecord(txid=7, op=TYPE_PUT, table="orders", key="o1", value=b"row")
        decoded, end = decode_record(rec.encode(100), 0, expected_lsn=100)
        assert decoded == rec
        assert end == len(rec.encode(100))

    def test_delete_record(self):
        rec = OpRecord(txid=3, op=TYPE_DELETE, table="t", key="k")
        decoded, _ = decode_record(rec.encode(0), 0)
        assert decoded == rec

    def test_commit_record(self):
        rec = CommitRecord(txid=9)
        decoded, _ = decode_record(rec.encode(0), 0)
        assert decoded == rec

    def test_checkpoint_record(self):
        rec = CheckpointRecord(seq=4, redo_lsn=12345)
        decoded, _ = decode_record(rec.encode(0), 0)
        assert decoded == rec


class TestValidation:
    def test_zero_bytes_are_not_a_record(self):
        assert decode_record(b"\x00" * 64, 0) is None

    def test_truncated_frame_rejected(self):
        raw = OpRecord(txid=1, op=TYPE_PUT, table="t", key="k", value=b"v").encode(0)
        assert decode_record(raw[:-1], 0) is None
        assert decode_record(raw[:5], 0) is None

    def test_corrupted_body_rejected(self):
        raw = bytearray(CommitRecord(txid=1).encode(0))
        raw[3] ^= 0xFF
        assert decode_record(bytes(raw), 0) is None

    def test_lsn_mismatch_rejected(self):
        """A stale frame from a previous ring lap must not parse."""
        raw = CommitRecord(txid=1).encode(100)
        assert decode_record(raw, 0, expected_lsn=100) is not None
        assert decode_record(raw, 0, expected_lsn=612) is None

    def test_lsn_not_checked_when_not_requested(self):
        raw = CommitRecord(txid=1).encode(100)
        assert decode_record(raw, 0) is not None

    def test_decode_at_offset(self):
        a = CommitRecord(txid=1).encode(0)
        b = CommitRecord(txid=2).encode(len(a))
        buf = a + b
        rec, end = decode_record(buf, len(a), expected_lsn=len(a))
        assert rec == CommitRecord(txid=2)
        assert end == len(buf)


@given(
    txid=st.integers(min_value=0, max_value=2**63),
    table=st.text(min_size=1, max_size=20),
    key=st.text(min_size=0, max_size=50),
    value=st.binary(max_size=500),
    lsn=st.integers(min_value=0, max_value=2**62),
)
def test_put_roundtrip_property(txid, table, key, value, lsn):
    rec = OpRecord(txid=txid, op=TYPE_PUT, table=table, key=key, value=value)
    decoded, _ = decode_record(rec.encode(lsn), 0, expected_lsn=lsn)
    assert decoded == rec


@given(st.binary(max_size=200))
def test_arbitrary_bytes_never_crash_decoder(garbage):
    decode_record(garbage, 0)  # must return None or a record, not raise
