"""Property test: the WAL writer against a reference byte-stream model.

For any interleaving of appends and flushes, the bytes durable in the
files must equal the reference stream up to the last flush point — for
both the append-mode and ring layouts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.units import KiB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.db.wal import WALStreamReader, WALWriter
from repro.storage.memory import MemoryFileSystem

PG_SEG = 16 * KiB
MY_SEG = 8 * KiB


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.binary(min_size=1, max_size=3000),  # append
            st.just("flush"),
        ),
        max_size=25,
    ),
    profile_name=st.sampled_from(["postgres", "mysql"]),
)
def test_flushed_bytes_match_reference_stream(ops, profile_name):
    profile = POSTGRES_PROFILE if profile_name == "postgres" else MYSQL_PROFILE
    seg = PG_SEG if profile_name == "postgres" else MY_SEG
    fs = MemoryFileSystem()
    writer = WALWriter(fs, profile, segment_size=seg)
    writer.preallocate_initial()
    reference = bytearray()
    flushed_upto = 0
    ring_capacity = writer.layout.ring_capacity
    for op in ops:
        if op == "flush":
            writer.flush()
            flushed_upto = len(reference)
        else:
            # Keep ring streams within one lap so old bytes stay readable.
            if ring_capacity and len(reference) + len(op) > ring_capacity:
                continue
            writer.append(bytes(op))
            reference.extend(op)
    writer.flush()
    flushed_upto = len(reference)

    reader = WALStreamReader(fs, profile, seg)
    stream = reader.read_stream(0, max_bytes=flushed_upto or 1)
    assert stream[:flushed_upto] == bytes(reference[:flushed_upto])


@settings(max_examples=30, deadline=None)
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=2000), min_size=1,
                    max_size=15),
    resume_after=st.integers(min_value=0, max_value=14),
)
def test_resume_mid_stream_continues_correctly(chunks, resume_after):
    """Write, stop at an arbitrary point, resume with a new writer from
    the flushed position (as recovery does), keep writing: the final
    stream is the concatenation."""
    fs = MemoryFileSystem()
    writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=PG_SEG)
    cut = min(resume_after, len(chunks))
    for chunk in chunks[:cut]:
        writer.append(chunk)
    writer.flush()
    position = writer.lsn

    reader = WALStreamReader(fs, POSTGRES_PROFILE, PG_SEG)
    tail = reader.read_tail(position)
    resumed = WALWriter(fs, POSTGRES_PROFILE, segment_size=PG_SEG,
                        start_lsn=position, tail=tail)
    for chunk in chunks[cut:]:
        resumed.append(chunk)
    resumed.flush()

    expected = b"".join(chunks)
    stream = reader.read_stream(0, max_bytes=len(expected) or 1)
    assert stream[:len(expected)] == expected
