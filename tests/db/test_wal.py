"""WAL writer, layout, stream reader and checkpoint pointers."""

from __future__ import annotations

import pytest

from repro.common.errors import DatabaseError, RecoveryError
from repro.common.units import KiB
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.db.records import CommitRecord, OpRecord, TYPE_PUT
from repro.db.wal import ControlState, WALLayout, WALStreamReader, WALWriter
from repro.storage.memory import MemoryFileSystem

SEG = 64 * KiB  # small segments so tests cross boundaries cheaply
MYSQL_SEG = 16 * KiB


class TestLayoutPostgres:
    def test_lsn_maps_into_segments(self):
        layout = WALLayout(POSTGRES_PROFILE, SEG)
        assert layout.locate(0) == (POSTGRES_PROFILE.wal_path(0), 0)
        assert layout.locate(SEG) == (POSTGRES_PROFILE.wal_path(1), 0)
        assert layout.locate(SEG + 17) == (POSTGRES_PROFILE.wal_path(1), 17)

    def test_segment_names_sort_with_lsn(self):
        names = [POSTGRES_PROFILE.wal_path(i) for i in range(300)]
        assert names == sorted(names)

    def test_no_ring_capacity(self):
        assert WALLayout(POSTGRES_PROFILE, SEG).ring_capacity == 0


class TestLayoutMySQL:
    def test_ring_wraps_across_files(self):
        layout = WALLayout(MYSQL_PROFILE, MYSQL_SEG)
        usable = MYSQL_SEG - MYSQL_PROFILE.wal_header_size
        header = MYSQL_PROFILE.wal_header_size
        assert layout.locate(0) == ("ib_logfile0", header)
        assert layout.locate(usable) == ("ib_logfile1", header)
        # A full lap returns to file 0 just past the header.
        assert layout.locate(2 * usable) == ("ib_logfile0", header)
        assert layout.ring_capacity == 2 * usable

    def test_header_area_never_used_for_log(self):
        layout = WALLayout(MYSQL_PROFILE, MYSQL_SEG)
        for lsn in range(0, 4 * MYSQL_SEG, 512):
            _path, offset = layout.locate(lsn)
            assert offset >= MYSQL_PROFILE.wal_header_size


class TestWALWriter:
    def test_append_then_flush_writes_full_pages(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=SEG)
        writer.append(b"x" * 100)
        writer.flush()
        seg0 = POSTGRES_PROFILE.wal_path(0)
        assert fs.size(seg0) == SEG  # preallocated
        assert fs.read(seg0, 0, 100) == b"x" * 100
        assert writer.flushed_lsn == 100

    def test_partial_page_rewritten_as_it_fills(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=SEG)
        writer.append(b"a" * 10)
        writer.flush()
        first_pages = writer.pages_written
        writer.append(b"b" * 10)
        writer.flush()
        assert writer.pages_written == first_pages + 1  # same page again
        assert fs.read(POSTGRES_PROFILE.wal_path(0), 0, 20) == b"a" * 10 + b"b" * 10

    def test_flush_is_idempotent(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=SEG)
        writer.append(b"x")
        writer.flush()
        count = writer.pages_written
        writer.flush()
        assert writer.pages_written == count

    def test_crossing_segment_boundary_creates_next_segment(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=SEG)
        writer.append(b"z" * (SEG + 100))
        writer.flush()
        assert fs.exists(POSTGRES_PROFILE.wal_path(1))
        assert fs.read(POSTGRES_PROFILE.wal_path(1), 0, 100) == b"z" * 100

    def test_ring_wrap_overwrites_old_space(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, MYSQL_PROFILE, segment_size=MYSQL_SEG)
        writer.preallocate_initial()
        capacity = writer.layout.ring_capacity
        writer.append(b"1" * 600)
        writer.flush()
        # Advance a full lap: same physical location, new content.
        writer.append(b"2" * capacity)
        writer.flush()
        header = MYSQL_PROFILE.wal_header_size
        assert fs.read("ib_logfile0", header, 1) == b"2"
        assert not fs.exists("ib_logfile2")

    def test_drop_segments_before(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=SEG)
        writer.append(b"x" * (3 * SEG))
        writer.flush()
        removed = writer.drop_segments_before(2 * SEG + 5)
        assert removed == [POSTGRES_PROFILE.wal_path(0), POSTGRES_PROFILE.wal_path(1)]
        assert fs.exists(POSTGRES_PROFILE.wal_path(2))

    def test_ring_never_drops_files(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, MYSQL_PROFILE, segment_size=MYSQL_SEG)
        writer.preallocate_initial()
        writer.append(b"x" * 5000)
        writer.flush()
        assert writer.drop_segments_before(4096) == []

    def test_misaligned_segment_size_rejected(self):
        with pytest.raises(DatabaseError):
            WALWriter(MemoryFileSystem(), POSTGRES_PROFILE, segment_size=SEG + 1)

    def test_resume_from_tail(self):
        """A writer reconstructed at a mid-page LSN continues the stream."""
        fs = MemoryFileSystem()
        writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=SEG)
        writer.append(b"abc")
        writer.flush()
        reader = WALStreamReader(fs, POSTGRES_PROFILE, SEG)
        tail = reader.read_tail(3)
        resumed = WALWriter(
            fs, POSTGRES_PROFILE, segment_size=SEG, start_lsn=3, tail=tail
        )
        resumed.append(b"def")
        resumed.flush()
        assert fs.read(POSTGRES_PROFILE.wal_path(0), 0, 6) == b"abcdef"

    def test_resume_tail_mismatch_rejected(self):
        with pytest.raises(DatabaseError):
            WALWriter(
                MemoryFileSystem(),
                POSTGRES_PROFILE,
                segment_size=SEG,
                start_lsn=10,
                tail=b"short",
            )


class TestStreamReader:
    def _write_records(self, fs, profile, seg, records):
        writer = WALWriter(fs, profile, segment_size=seg)
        writer.preallocate_initial()
        lsns = []
        for rec in records:
            lsns.append(writer.append(rec.encode(writer.lsn)))
        writer.flush()
        return lsns

    def test_scan_yields_all_records(self):
        fs = MemoryFileSystem()
        records = [
            OpRecord(txid=1, op=TYPE_PUT, table="t", key=f"k{i}", value=b"v")
            for i in range(10)
        ] + [CommitRecord(txid=1)]
        self._write_records(fs, POSTGRES_PROFILE, SEG, records)
        reader = WALStreamReader(fs, POSTGRES_PROFILE, SEG)
        scanned = [rec for rec, _s, _e in reader.scan_from(0)]
        assert scanned == records

    def test_scan_stops_at_unflushed_region(self):
        fs = MemoryFileSystem()
        writer = WALWriter(fs, POSTGRES_PROFILE, segment_size=SEG)
        writer.append(CommitRecord(txid=1).encode(writer.lsn))
        writer.flush()
        writer.append(CommitRecord(txid=2).encode(writer.lsn))  # never flushed
        reader = WALStreamReader(fs, POSTGRES_PROFILE, SEG)
        scanned = [rec for rec, _s, _e in reader.scan_from(0)]
        assert scanned == [CommitRecord(txid=1)]

    def test_scan_from_mid_stream(self):
        fs = MemoryFileSystem()
        records = [CommitRecord(txid=i) for i in range(5)]
        lsns = self._write_records(fs, POSTGRES_PROFILE, SEG, records)
        reader = WALStreamReader(fs, POSTGRES_PROFILE, SEG)
        scanned = [rec for rec, _s, _e in reader.scan_from(lsns[2])]
        assert scanned == records[2:]

    def test_ring_scan_rejects_stale_lap(self):
        """After wrapping, old frames at the same offsets must not be
        yielded for the new lap's LSNs."""
        fs = MemoryFileSystem()
        writer = WALWriter(fs, MYSQL_PROFILE, segment_size=MYSQL_SEG)
        writer.preallocate_initial()
        capacity = writer.layout.ring_capacity
        # Nearly fill a lap with records, then scan from a point whose
        # physical bytes still hold lap-0 data.
        while writer.lsn < capacity - 2048:
            writer.append(CommitRecord(txid=writer.lsn).encode(writer.lsn))
        writer.flush()
        reader = WALStreamReader(fs, MYSQL_PROFILE, MYSQL_SEG)
        lap2_start = writer.lsn + capacity  # a lap ahead: nothing written yet
        assert [r for r, _s, _e in reader.scan_from(lap2_start)] == []

    def test_scan_stops_at_missing_segment(self):
        fs = MemoryFileSystem()
        records = [CommitRecord(txid=i) for i in range(3)]
        self._write_records(fs, POSTGRES_PROFILE, SEG, records)
        fs.unlink(POSTGRES_PROFILE.wal_path(0))
        reader = WALStreamReader(fs, POSTGRES_PROFILE, SEG)
        assert [r for r, _s, _e in reader.scan_from(0)] == []


class TestControlState:
    @pytest.mark.parametrize("profile,seg", [
        (POSTGRES_PROFILE, SEG),
        (MYSQL_PROFILE, MYSQL_SEG),
    ])
    def test_write_read_roundtrip(self, profile, seg):
        fs = MemoryFileSystem()
        WALWriter(fs, profile, segment_size=seg).preallocate_initial()
        control = ControlState(fs, profile)
        control.write(3, 4096, 77)
        assert ControlState(fs, profile).read() == (3, 4096, 77)

    def test_missing_control_raises(self):
        fs = MemoryFileSystem()
        with pytest.raises(RecoveryError):
            ControlState(fs, POSTGRES_PROFILE).read()

    def test_pg_corrupt_control_raises(self):
        fs = MemoryFileSystem()
        control = ControlState(fs, POSTGRES_PROFILE)
        control.write(1, 100, 2)
        fs.corrupt(POSTGRES_PROFILE.control_path, 8, b"\xff\xff")
        with pytest.raises(RecoveryError):
            ControlState(fs, POSTGRES_PROFILE).read()

    def test_mysql_slots_alternate(self):
        fs = MemoryFileSystem()
        WALWriter(fs, MYSQL_PROFILE, segment_size=MYSQL_SEG).preallocate_initial()
        control = ControlState(fs, MYSQL_PROFILE)
        control.write(1, 100, 2)
        control.write(2, 200, 3)
        # Both slots hold valid data; the newest wins.
        assert ControlState(fs, MYSQL_PROFILE).read() == (2, 200, 3)

    def test_mysql_survives_one_corrupt_slot(self):
        """A crash mid-checkpoint-write leaves one torn slot; recovery
        must fall back to the other — InnoDB's alternating-slot design."""
        fs = MemoryFileSystem()
        WALWriter(fs, MYSQL_PROFILE, segment_size=MYSQL_SEG).preallocate_initial()
        control = ControlState(fs, MYSQL_PROFILE)
        control.write(1, 100, 2)
        control.write(2, 200, 3)
        # Corrupt the newer slot (seq=2 went to the second offset used).
        fs.corrupt("ib_logfile0", 512 + 4, b"\xde\xad")  # seq=1 slot? check both
        fresh = ControlState(fs, MYSQL_PROFILE)
        seq, redo, txid = fresh.read()
        assert (seq, redo, txid) in [(1, 100, 2), (2, 200, 3)]
