"""Buffer-pool eviction and WAL segment recycling."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.common.units import KiB
from repro.db.buffer import BufferPool
from repro.db.engine import EngineConfig, MiniDB
from repro.db.pages import TablePage
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem

SEG = 64 * KiB


def make_db(**overrides):
    fs = MemoryFileSystem()
    config = EngineConfig(wal_segment_size=SEG, auto_checkpoint=False,
                          **overrides)
    return fs, MiniDB.create(fs, POSTGRES_PROFILE, config), config


class TestBufferPoolUnit:
    def test_unbounded_never_evicts(self):
        pool = BufferPool(None)
        for i in range(100):
            page = TablePage(i, 8192)
            page.dirty = False
            pool.touch("t", page)
        assert pool.evict_overflow() == []
        assert pool.unbounded

    def test_lru_order(self):
        pool = BufferPool(2)
        pages = [TablePage(i, 8192) for i in range(3)]
        for page in pages:
            pool.touch("t", page)
        pool.touch("t", pages[0])  # page 0 becomes most recent
        evicted = pool.evict_overflow()
        assert evicted == [("t", 1)]

    def test_dirty_pages_pinned(self):
        pool = BufferPool(1)
        dirty = TablePage(0, 8192)
        dirty.dirty = True
        clean = TablePage(1, 8192)
        pool.touch("t", dirty)
        pool.touch("t", clean)
        evicted = pool.evict_overflow()
        assert ("t", 0) not in evicted

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            BufferPool(0)


class TestEngineWithBoundedPool:
    def test_reads_survive_eviction(self):
        _fs, db, _config = make_db(buffer_pool_pages=2)
        for i in range(200):  # ~13 pages of ~16 rows each
            db.put("t", f"k{i}", b"x" * 500)
        db.checkpoint()  # clean the pages so they become evictable
        # Read every row: evicted pages reload from the table file.
        for i in range(200):
            assert db.get("t", f"k{i}") == b"x" * 500
        stats = db.buffer_stats()
        assert stats["evictions"] > 0
        assert stats["reloads"] > 0
        assert stats["resident_pages"] <= 2 + 1  # one touch in flight

    def test_updates_after_eviction(self):
        _fs, db, _config = make_db(buffer_pool_pages=2)
        for i in range(40):
            db.put("t", f"k{i}", b"a" * 500)
        db.checkpoint()
        for i in range(40):
            db.put("t", f"k{i}", b"b" * 500)  # rewrite every row
        db.checkpoint()
        for i in range(40):
            assert db.get("t", f"k{i}") == b"b" * 500

    def test_crash_recovery_with_bounded_pool(self):
        fs, db, config = make_db(buffer_pool_pages=3)
        for i in range(50):
            db.put("t", f"k{i}", b"v" * 300)
        db.checkpoint()
        for i in range(50, 70):
            db.put("t", f"k{i}", b"v" * 300)
        db.crash()
        recovered = MiniDB.open(fs, POSTGRES_PROFILE, config)
        for i in range(70):
            assert recovered.get("t", f"k{i}") == b"v" * 300
        assert recovered.buffer_stats()["resident_pages"] <= 4

    def test_unbounded_default_keeps_everything(self):
        _fs, db, _config = make_db()
        for i in range(50):
            db.put("t", f"k{i}", b"v" * 300)
        db.checkpoint()
        assert db.buffer_stats()["evictions"] == 0


class TestSegmentRecycling:
    def test_checkpoint_renames_instead_of_deleting(self):
        fs, db, _config = make_db(recycle_wal_segments=True)
        for i in range(300):
            db.put("t", f"k{i}", b"x" * 200)
        segments_before = set(fs.files("pg_xlog/"))
        assert len(segments_before) > 1
        db.checkpoint()
        segments_after = set(fs.files("pg_xlog/"))
        # Nothing deleted: old names replaced by future names.
        assert len(segments_after) == len(segments_before)
        assert segments_after != segments_before

    def test_recovery_ignores_stale_frames_in_recycled_segments(self):
        """A recycled segment still contains valid-looking frames from
        its previous life; redo must never apply them."""
        fs, db, config = make_db(recycle_wal_segments=True)
        for i in range(300):
            db.put("t", f"old{i}", b"x" * 200)
        db.checkpoint()  # recycles old segments to future names
        for i in range(40):
            db.put("t", f"new{i}", b"y" * 200)
        db.crash()
        recovered = MiniDB.open(fs, POSTGRES_PROFILE, config)
        for i in range(300):
            assert recovered.get("t", f"old{i}") == b"x" * 200
        for i in range(40):
            assert recovered.get("t", f"new{i}") == b"y" * 200
        # And nothing phantom appeared.
        assert recovered.row_count("t") == 340

    def test_writer_reuses_recycled_files(self):
        fs, db, _config = make_db(recycle_wal_segments=True)
        for i in range(300):
            db.put("t", f"k{i}", b"x" * 200)
        db.checkpoint()
        count_after_ckpt = len(fs.files("pg_xlog/"))
        # Keep writing: the preallocated recycled files are consumed
        # without growing the directory.
        for i in range(300, 500):
            db.put("t", f"k{i}", b"x" * 200)
        assert len(fs.files("pg_xlog/")) <= count_after_ckpt + 1
