"""Table pages and the table store."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import DatabaseError
from repro.db.pages import TablePage
from repro.db.profiles import MYSQL_PROFILE, POSTGRES_PROFILE
from repro.db.tables import Table, TableStore
from repro.storage.memory import MemoryFileSystem

PAGE = 8192


class TestTablePage:
    def test_put_get_roundtrip(self):
        page = TablePage(0, PAGE)
        page.put("k", b"value")
        assert page.rows["k"] == b"value"
        assert page.dirty

    def test_update_in_place_adjusts_size(self):
        page = TablePage(0, PAGE)
        page.put("k", b"x" * 100)
        used_before = page.used
        page.put("k", b"y" * 50)
        assert page.used == used_before - 50

    def test_remove_releases_space(self):
        page = TablePage(0, PAGE)
        empty_used = page.used
        page.put("k", b"data")
        page.remove("k")
        assert page.used == empty_used

    def test_overflow_rejected(self):
        page = TablePage(0, 64)
        with pytest.raises(DatabaseError):
            page.put("k", b"z" * 100)

    def test_encode_pads_to_page_size(self):
        page = TablePage(0, PAGE)
        page.put("k", b"v")
        assert len(page.encode()) == PAGE

    def test_decode_roundtrip(self):
        page = TablePage(3, PAGE)
        page.put("a", b"1")
        page.put("b", b"22")
        decoded = TablePage.decode(3, PAGE, page.encode())
        assert decoded is not None
        assert decoded.rows == {"a": b"1", "b": b"22"}
        assert decoded.used == page.used

    def test_decode_blank_page_is_none(self):
        assert TablePage.decode(0, PAGE, b"\x00" * PAGE) is None

    def test_decode_garbage_is_none(self):
        assert TablePage.decode(0, PAGE, b"\xff" * PAGE) is None

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=12), st.binary(max_size=60), max_size=40
        )
    )
    def test_encode_decode_property(self, rows):
        page = TablePage(0, PAGE)
        for key, value in rows.items():
            page.put(key, value)
        decoded = TablePage.decode(0, PAGE, page.encode())
        assert decoded is not None and decoded.rows == rows


class TestTable:
    def test_put_get_delete(self):
        table = Table("t", PAGE)
        table.put("k", b"v")
        assert table.get("k") == b"v"
        assert table.delete("k")
        assert table.get("k") is None
        assert not table.delete("k")

    def test_rows_spill_to_new_pages(self):
        table = Table("t", 256)
        for i in range(50):
            table.put(f"key{i:03d}", b"x" * 40)
        assert len(table.pages) > 1
        for i in range(50):
            assert table.get(f"key{i:03d}") == b"x" * 40

    def test_growing_update_relocates_row(self):
        table = Table("t", 256)
        table.put("a", b"x" * 100)
        table.put("b", b"y" * 100)  # page 0 nearly full
        table.put("a", b"z" * 150)  # no longer fits beside b
        assert table.get("a") == b"z" * 150
        assert table.get("b") == b"y" * 100

    def test_oversized_row_rejected(self):
        table = Table("t", 256)
        with pytest.raises(DatabaseError):
            table.put("k", b"x" * 1000)

    def test_row_count(self):
        table = Table("t", PAGE)
        for i in range(7):
            table.put(f"k{i}", b"v")
        table.delete("k0")
        assert table.row_count() == 6


class TestTableStore:
    @pytest.fixture(params=["postgres", "mysql"])
    def setup(self, request):
        profile = POSTGRES_PROFILE if request.param == "postgres" else MYSQL_PROFILE
        fs = MemoryFileSystem()
        return fs, profile, TableStore(fs, profile)

    def test_table_creation_touches_files(self, setup):
        fs, profile, store = setup
        store.table("orders")
        assert fs.exists(profile.table_path("orders"))
        if profile.ring_wal:
            assert fs.exists("orders.frm")

    def test_missing_table_without_create(self, setup):
        _fs, _profile, store = setup
        with pytest.raises(DatabaseError):
            store.table("ghost", create=False)

    def test_flush_and_reload(self, setup):
        fs, profile, store = setup
        table = store.table("t")
        with store.lock:
            table.put("k1", b"v1")
            table.put("k2", b"v2")
        for name, page in store.collect_dirty():
            store.flush_page(name, page)
        fresh = TableStore(fs, profile)
        fresh.load_all()
        assert fresh.table("t", create=False).get("k1") == b"v1"
        assert fresh.table("t", create=False).get("k2") == b"v2"

    def test_flush_clears_dirty(self, setup):
        _fs, _profile, store = setup
        table = store.table("t")
        with store.lock:
            table.put("k", b"v")
        for name, page in store.collect_dirty():
            store.flush_page(name, page)
        assert store.collect_dirty() == []

    def test_unflushed_rows_not_in_files(self, setup):
        fs, profile, store = setup
        with store.lock:
            store.table("t").put("k", b"v")
        fresh = TableStore(fs, profile)
        fresh.load_all()
        assert fresh.table("t", create=False).get("k") is None

    def test_db_file_bytes_excludes_wal(self, setup):
        fs, profile, store = setup
        store.table("t")
        fs.write(profile.wal_path(0), 0, b"\x00" * 4096)
        wal_free = store.db_file_bytes()
        fs.write(profile.wal_path(0), 4096, b"\x00" * 4096)
        assert store.db_file_bytes() == wal_free
