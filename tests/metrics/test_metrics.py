"""Resource monitor and text tables."""

from __future__ import annotations

import time

import pytest

from repro.common.errors import ConfigError
from repro.metrics.resources import ResourceMonitor, current_rss_bytes
from repro.metrics.tables import TextTable


class TestResourceMonitor:
    def test_measures_wall_and_cpu(self):
        monitor = ResourceMonitor()
        monitor.start()
        # Burn a little CPU and a little wall time.
        total = sum(i * i for i in range(200_000))
        time.sleep(0.05)
        usage = monitor.stop()
        assert usage.wall_seconds >= 0.05
        assert usage.cpu_seconds >= 0.0
        assert usage.peak_rss_bytes > 0
        assert 0.0 <= usage.cpu_percent <= 400.0
        assert total > 0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            ResourceMonitor().stop()

    def test_monitor_is_reusable(self):
        monitor = ResourceMonitor()
        monitor.start()
        monitor.stop()
        monitor.start()
        usage = monitor.stop()
        assert usage.wall_seconds >= 0

    def test_current_rss(self):
        assert current_rss_bytes() > 1_000_000  # a Python process


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["config", "TpmC"], title="Figure 5")
        table.add("ext4", 6000.0)
        table.add("B=10/S=100", 123.456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Figure 5"
        assert "config" in lines[1] and "TpmC" in lines[1]
        assert len(lines) == 5
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_cell_count_validated(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ConfigError):
            table.add("only-one")

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigError):
            TextTable([])

    def test_float_formatting(self):
        table = TextTable(["v"])
        table.add(0.00123)
        table.add(12.3456)
        table.add(4567.8)
        table.add(0.0)
        rendered = table.render()
        assert "0.0012" in rendered
        assert "12.35" in rendered
        assert "4568" in rendered

    def test_empty_table_renders_header(self):
        assert "col" in TextTable(["col"]).render()
