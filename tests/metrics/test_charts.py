"""ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.metrics.charts import bar_chart, line_chart


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart([("full", 100.0), ("half", 50.0)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        text = bar_chart([("a", 1.0), ("longer", 2.0)], width=5)
        positions = {line.index("|") for line in text.splitlines()}
        assert len(positions) == 1

    def test_title_and_unit(self):
        text = bar_chart([("x", 3.0)], title="Tpm", unit=" tpm")
        assert text.startswith("Tpm")
        assert "3 tpm" in text

    def test_zero_values_ok(self):
        text = bar_chart([("zero", 0.0), ("one", 1.0)], width=4)
        assert "####" in text

    def test_all_zero_ok(self):
        bar_chart([("a", 0.0), ("b", 0.0)])  # must not divide by zero

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart([])
        with pytest.raises(ConfigError):
            bar_chart([("a", 1.0)], width=0)
        with pytest.raises(ConfigError):
            bar_chart([("a", -1.0)])


class TestLineChart:
    def test_renders_grid(self):
        points = [(0, 0), (5, 5), (10, 10)]
        text = line_chart(points, width=20, height=5, title="curve")
        assert text.startswith("curve")
        assert text.count("*") == 3

    def test_extremes_on_borders(self):
        points = [(0, 0), (10, 100)]
        text = line_chart(points, width=10, height=4)
        lines = text.splitlines()
        assert "*" in lines[0]      # max y on the top row
        assert "*" in lines[3]      # min y on the bottom row

    def test_flat_series_ok(self):
        line_chart([(0, 5), (1, 5), (2, 5)])  # zero y-span must not crash

    def test_validation(self):
        with pytest.raises(ConfigError):
            line_chart([(0, 0)])
        with pytest.raises(ConfigError):
            line_chart([(0, 0), (1, 1)], width=1)
