"""Row codec."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import IntegrityError
from repro.workloads.rows import decode_row, encode_row


class TestRowCodec:
    def test_roundtrip_mixed_types(self):
        row = {"id": 7, "name": "alice", "balance": -12.5}
        assert decode_row(encode_row(row)) == row

    def test_padding_reaches_target_size(self):
        raw = encode_row({"a": 1}, pad_to=300)
        assert len(raw) >= 300
        assert decode_row(raw) == {"a": 1}

    def test_no_padding_when_already_large(self):
        row = {"text": "x" * 500}
        raw = encode_row(row, pad_to=100)
        assert decode_row(raw) == row

    def test_empty_row(self):
        assert decode_row(encode_row({})) == {}

    def test_bool_rejected(self):
        with pytest.raises(IntegrityError):
            encode_row({"flag": True})

    def test_unsupported_type_rejected(self):
        with pytest.raises(IntegrityError):
            encode_row({"data": b"bytes"})

    def test_negative_and_large_ints(self):
        row = {"a": -(2**60), "b": 2**62}
        assert decode_row(encode_row(row)) == row


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=15).filter(lambda s: s != "_pad"),
        st.one_of(
            st.integers(min_value=-(2**53), max_value=2**53),
            st.text(max_size=40),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
        max_size=12,
    ),
    st.integers(min_value=0, max_value=600),
)
def test_roundtrip_property(row, pad):
    decoded = decode_row(encode_row(row, pad_to=pad))
    assert decoded == row
