"""TPC-C: schema population, transaction profiles, driver."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem
from repro.workloads.tpcc import (
    TPCCConfig,
    TPCCDatabase,
    TPCCDriver,
    TransactionMix,
)
from repro.workloads.tpcc import transactions as tx
from repro.workloads.tpcc.schema import ck, dk, ik, nok, sk, wk


SMALL = TPCCConfig(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=5,
    items=50,
    stock_per_warehouse=50,
    initial_orders_per_district=4,
)


@pytest.fixture
def tpcc():
    fs = MemoryFileSystem()
    db = MiniDB.create(
        fs, POSTGRES_PROFILE,
        EngineConfig(wal_segment_size=1 * MiB, auto_checkpoint=False),
    )
    tp = TPCCDatabase(db, SMALL)
    tp.load(seed=1)
    return tp


class TestLoad:
    def test_all_tables_populated(self, tpcc):
        db = tpcc.db
        assert db.row_count(tpcc.ITEM) == 50
        assert db.row_count(tpcc.WAREHOUSE) == 1
        assert db.row_count(tpcc.DISTRICT) == 2
        assert db.row_count(tpcc.CUSTOMER) == 10
        assert db.row_count(tpcc.STOCK) == 50
        assert db.row_count(tpcc.ORDERS) == 8

    def test_undelivered_orders_exist(self, tpcc):
        assert tpcc.db.row_count(tpcc.NEW_ORDER) > 0

    def test_row_sizes_match_padding(self, tpcc):
        raw = tpcc.db.get(tpcc.CUSTOMER, ck(1, 1, 1))
        assert len(raw) >= SMALL.pad_customer

    def test_district_next_order_pointer(self, tpcc):
        district = tpcc.read(tpcc.DISTRICT, dk(1, 1))
        assert district["d_next_o_id"] == SMALL.initial_orders_per_district + 1

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TPCCConfig(warehouses=0)
        with pytest.raises(ConfigError):
            TPCCConfig(items=10, stock_per_warehouse=10, order_lines_max=15)
        with pytest.raises(ConfigError):
            TPCCConfig(items=100, stock_per_warehouse=99)


class TestNewOrder:
    def test_creates_order_and_lines(self, tpcc):
        rng = random.Random(0)
        before = tpcc.db.row_count(tpcc.ORDERS)
        committed = tx.new_order(tpcc, rng, w=1)
        if committed:
            assert tpcc.db.row_count(tpcc.ORDERS) == before + 1
            assert tpcc.db.row_count(tpcc.ORDER_LINE) > 0

    def test_advances_district_counter(self, tpcc):
        rng = random.Random(1)  # seed 1 does not roll the 1% abort
        d_before = {
            d: tpcc.read(tpcc.DISTRICT, dk(1, d))["d_next_o_id"] for d in (1, 2)
        }
        assert tx.new_order(tpcc, rng, w=1)
        advanced = sum(
            1 for d in (1, 2)
            if tpcc.read(tpcc.DISTRICT, dk(1, d))["d_next_o_id"] == d_before[d] + 1
        )
        assert advanced == 1

    def test_updates_stock(self, tpcc):
        rng = random.Random(2)
        totals_before = sum(
            tpcc.read(tpcc.STOCK, sk(1, i))["s_order_cnt"] for i in range(1, 51)
        )
        assert tx.new_order(tpcc, rng, w=1)
        totals_after = sum(
            tpcc.read(tpcc.STOCK, sk(1, i))["s_order_cnt"] for i in range(1, 51)
        )
        assert totals_after > totals_before

    def test_abort_leaves_no_trace(self, tpcc):
        rng = random.Random(0)
        # Find a seed that triggers the 1% rollback deterministically.
        for seed in range(500):
            probe = random.Random(seed)
            if probe.random() < 0.01:  # first roll decides district... no:
                pass
        # Force the rollback path directly instead: monkey via many runs.
        before_orders = tpcc.db.row_count(tpcc.ORDERS)
        rolls = 0
        for seed in range(400):
            rng = random.Random(seed)
            if not tx.new_order(tpcc, rng, w=1):
                rolls += 1
        after_commits = tpcc.db.row_count(tpcc.ORDERS) - before_orders
        assert rolls > 0, "1% rollback never triggered in 400 runs"
        assert after_commits == 400 - rolls


class TestPayment:
    def test_moves_money(self, tpcc):
        rng = random.Random(3)
        w_before = tpcc.read(tpcc.WAREHOUSE, wk(1))["w_ytd"]
        assert tx.payment(tpcc, rng, w=1)
        assert tpcc.read(tpcc.WAREHOUSE, wk(1))["w_ytd"] > w_before

    def test_writes_history(self, tpcc):
        rng = random.Random(4)
        before = tpcc.db.row_count(tpcc.HISTORY)
        tx.payment(tpcc, rng, w=1)
        assert tpcc.db.row_count(tpcc.HISTORY) == before + 1


class TestDelivery:
    def test_consumes_new_orders(self, tpcc):
        rng = random.Random(5)
        before = tpcc.db.row_count(tpcc.NEW_ORDER)
        assert tx.delivery(tpcc, rng, w=1)
        assert tpcc.db.row_count(tpcc.NEW_ORDER) < before

    def test_credits_customer(self, tpcc):
        rng = random.Random(6)
        balances_before = sum(
            tpcc.read(tpcc.CUSTOMER, ck(1, d, c))["c_balance"]
            for d in (1, 2) for c in range(1, 6)
        )
        tx.delivery(tpcc, rng, w=1)
        balances_after = sum(
            tpcc.read(tpcc.CUSTOMER, ck(1, d, c))["c_balance"]
            for d in (1, 2) for c in range(1, 6)
        )
        assert balances_after > balances_before


class TestReadOnlyProfiles:
    def test_order_status_writes_nothing(self, tpcc):
        commits_before = tpcc.db.stats.commits
        assert tx.order_status(tpcc, random.Random(7), w=1)
        assert tpcc.db.stats.commits == commits_before

    def test_stock_level_writes_nothing(self, tpcc):
        commits_before = tpcc.db.stats.commits
        assert tx.stock_level(tpcc, random.Random(8), w=1)
        assert tpcc.db.stats.commits == commits_before


class TestCustomerSelection:
    def test_lastnames_follow_syllable_table(self):
        from repro.workloads.tpcc.schema import customer_lastname
        assert customer_lastname(0) == "BARBARBAR"
        assert customer_lastname(371) == "PRICALLYOUGHT"
        assert customer_lastname(1371) == customer_lastname(371)

    def test_lastnames_are_non_unique(self, tpcc):
        names = [
            tpcc.read(tpcc.CUSTOMER, ck(1, 1, c))["c_last"]
            for c in range(1, 6)
        ]
        assert all(name.isalpha() for name in names)

    def test_select_customer_by_lastname_returns_valid_id(self, tpcc):
        from repro.workloads.tpcc.transactions import select_customer
        rng = random.Random(42)
        for _ in range(20):
            c = select_customer(tpcc, rng, w=1, d=1)
            assert 1 <= c <= SMALL.customers_per_district

    def test_lastname_selection_resolves_ties_to_middle_match(self, tpcc):
        from repro.workloads.tpcc.schema import customer_lastname
        from repro.workloads.tpcc.transactions import select_customer

        class FixedRng:
            """Forces the by-lastname path and a fixed target."""

            def __init__(self, target_c):
                self._target = target_c

            def random(self):
                return 0.99  # > 0.40: lastname path

            def randint(self, a, b):
                return self._target

        c = select_customer(tpcc, FixedRng(3), w=1, d=1)
        target = customer_lastname(3)
        matches = [
            i for i in range(1, SMALL.customers_per_district + 1)
            if tpcc.read(tpcc.CUSTOMER, ck(1, 1, i))["c_last"] == target
        ]
        assert c == matches[len(matches) // 2]


class TestMix:
    def test_standard_mix_sums_to_one(self):
        TransactionMix()  # must not raise

    def test_invalid_mix_rejected(self):
        with pytest.raises(ConfigError):
            TransactionMix(new_order=0.9, payment=0.9, order_status=0.0,
                           delivery=0.0, stock_level=0.0)

    def test_pick_distribution_roughly_standard(self):
        mix = TransactionMix()
        rng = random.Random(9)
        picks = [mix.pick(rng) for _ in range(10_000)]
        share = picks.count("new_order") / len(picks)
        assert 0.42 <= share <= 0.48

    def test_write_heavy_share(self):
        """§8: ~90% of TPC-C transactions are updates."""
        mix = TransactionMix()
        writing = mix.new_order + mix.payment + mix.delivery
        assert writing >= 0.90


class TestDriver:
    def test_short_run_produces_counts(self, tpcc):
        driver = TPCCDriver(tpcc, terminals=2, seed=1)
        result = driver.run(duration=0.5)
        assert result.total > 0
        assert result.tpm_total > 0
        assert not result.errors

    def test_tpmc_counts_only_new_orders(self, tpcc):
        driver = TPCCDriver(tpcc, terminals=2, seed=2)
        result = driver.run(duration=0.5)
        assert result.tpm_c <= result.tpm_total
        assert result.counts.get("new_order", 0) > 0

    def test_terminal_count_validated(self, tpcc):
        with pytest.raises(ConfigError):
            TPCCDriver(tpcc, terminals=0)

    def test_database_consistent_after_run(self, tpcc):
        """Money conservation-ish: the run commits cleanly and the engine
        can still checkpoint, crash and recover."""
        driver = TPCCDriver(tpcc, terminals=3, seed=3)
        driver.run(duration=0.5)
        db = tpcc.db
        db.checkpoint()
        orders = db.row_count(tpcc.ORDERS)
        db.crash()
        recovered = MiniDB.open(
            db._fs, POSTGRES_PROFILE,
            EngineConfig(wal_segment_size=1 * MiB),
        )
        assert recovered.row_count(tpcc.ORDERS) == orders
