"""The plain update-stream generator."""

from __future__ import annotations

import time

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MiB
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.storage.memory import MemoryFileSystem
from repro.workloads import UpdateStream


@pytest.fixture
def db():
    return MiniDB.create(
        MemoryFileSystem(), POSTGRES_PROFILE,
        EngineConfig(wal_segment_size=1 * MiB, auto_checkpoint=False),
    )


class TestIssue:
    def test_issues_exactly_count(self, db):
        stream = UpdateStream(db, keyspace=10)
        assert stream.issue(25) == 25
        assert stream.updates_issued == 25
        assert db.stats.commits == 25

    def test_keyspace_bounds_distinct_rows(self, db):
        stream = UpdateStream(db, keyspace=5)
        stream.issue(100)
        assert db.row_count("data") <= 5

    def test_value_size(self, db):
        stream = UpdateStream(db, keyspace=1, value_bytes=64)
        stream.issue(1)
        assert len(db.get("data", "k0")) == 64

    def test_deterministic_per_seed(self):
        def rows(seed):
            local = MiniDB.create(
                MemoryFileSystem(), POSTGRES_PROFILE,
                EngineConfig(wal_segment_size=1 * MiB),
            )
            UpdateStream(local, keyspace=50, seed=seed).issue(30)
            return {k: local.get("data", k) for k in
                    (f"k{i}" for i in range(50))}
        assert rows(1) == rows(1)
        assert rows(1) != rows(2)

    def test_keyspace_validated(self, db):
        with pytest.raises(ConfigError):
            UpdateStream(db, keyspace=0)


class TestRate:
    def test_rate_limited_run(self, db):
        stream = UpdateStream(db)
        started = time.monotonic()
        issued = stream.run_at_rate(updates_per_minute=1200, duration=0.3)
        elapsed = time.monotonic() - started
        # 1200/min = 20/s -> about 6 updates in 0.3 s.
        assert 2 <= issued <= 12
        assert elapsed >= 0.3

    def test_rate_validated(self, db):
        with pytest.raises(ConfigError):
            UpdateStream(db).run_at_rate(0, duration=0.1)
