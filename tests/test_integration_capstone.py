"""Capstone integration: everything at once.

TPC-C terminals drive a MySQL-profile MiniDB through Ginja (compression
and encryption on, bounded buffer pool) against a flaky cloud; a
checkpoint runs mid-flight; the primary dies without draining; the
standby verifies the backup, recovers, and continues the workload.
"""

from __future__ import annotations

import pytest

from repro.common.units import KiB
from repro.cloud.faults import FaultPolicy
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.core.inspect import bucket_inventory
from repro.core.verification import verify_backup
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import MYSQL_PROFILE
from repro.storage.memory import MemoryFileSystem
from repro.workloads.tpcc import TPCCConfig, TPCCDatabase, TPCCDriver

ENGINE = EngineConfig(
    wal_segment_size=64 * KiB,
    auto_checkpoint=False,
    buffer_pool_pages=64,
    doublewrite=True,
)
GINJA = GinjaConfig(
    batch=20, safety=400, batch_timeout=0.05, safety_timeout=10.0,
    uploaders=3, compress=True, encrypt=True, password="capstone",
    max_retries=30, retry_backoff=0.002,
)
TPCC = TPCCConfig(
    warehouses=1, districts_per_warehouse=4, customers_per_district=10,
    items=100, stock_per_warehouse=100, initial_orders_per_district=5,
)


def test_capstone_end_to_end():
    backend = InMemoryObjectStore()
    cloud = SimulatedCloud(
        backend=backend, time_scale=0.0,
        faults=FaultPolicy(error_rate=0.02),  # a mildly unreliable provider
    )
    disk = MemoryFileSystem()
    MiniDB.create(disk, MYSQL_PROFILE, ENGINE).close()
    ginja = Ginja(disk, cloud, MYSQL_PROFILE, GINJA)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, MYSQL_PROFILE, ENGINE)
    tpcc = TPCCDatabase(db, TPCC)
    tpcc.load(seed=5)
    db.checkpoint()
    assert ginja.drain(timeout=30.0)

    # Phase 1: concurrent terminals + a mid-run checkpoint.
    driver = TPCCDriver(tpcc, terminals=3, seed=5)
    result = driver.run(duration=1.5, warmup=0.2)
    assert result.total > 0 and not result.errors
    db.checkpoint()
    assert ginja.drain(timeout=30.0)
    orders_before = db.row_count(tpcc.ORDERS)

    # A few more commits that we do NOT drain — the disaster exposure.
    for i in range(10):
        db.put("side", f"k{i}", b"v")

    # Disaster: primary gone, bucket survives as-is.
    ginja.stop(drain_timeout=30.0)
    health_failed = ginja.health()["failed"]
    assert health_failed is None, health_failed

    # The standby first checks the backup's health without downloading...
    inventory = bucket_inventory(backend)
    assert inventory.recoverable, inventory.summary()
    # ...then verifies it fully (MAC + engine recovery + a service check).
    report = verify_backup(
        backend, MYSQL_PROFILE, GINJA, engine_config=ENGINE,
        checks=[lambda replica: []
                if replica.row_count("orders") >= orders_before * 0.5
                else ["order table implausibly small"]],
    )
    assert report.ok, report.errors

    # Recover and continue the workload on the standby.
    standby = MemoryFileSystem()
    ginja2, _rep = Ginja.recover(backend, standby, MYSQL_PROFILE, GINJA)
    db2 = MiniDB.open(ginja2.fs, MYSQL_PROFILE, ENGINE)
    assert db2.row_count(tpcc.ORDERS) > 0
    tpcc2 = TPCCDatabase(db2, TPCC)
    driver2 = TPCCDriver(tpcc2, terminals=2, seed=6)
    result2 = driver2.run(duration=0.5, warmup=0.1)
    assert result2.total > 0 and not result2.errors
    assert ginja2.drain(timeout=30.0)
    ginja2.stop()
