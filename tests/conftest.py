"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.storage.memory import MemoryFileSystem


@pytest.fixture
def fs() -> MemoryFileSystem:
    """A zero-latency RAM file system."""
    return MemoryFileSystem()


@pytest.fixture
def store() -> InMemoryObjectStore:
    """A raw in-memory bucket."""
    return InMemoryObjectStore()


@pytest.fixture
def cloud() -> SimulatedCloud:
    """A simulated cloud with no latency and no faults."""
    return SimulatedCloud(time_scale=0.0)
