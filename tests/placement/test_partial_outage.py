"""Listing-class verbs under partial provider outage.

Satellite contract: with one provider down, ``exists()``,
``total_bytes()`` and ``list()`` on a multi-provider store must answer
from the survivors — LIST-derived recovery plans and fsck verdicts may
not change just because a provider died.  Fragment keys must never leak
into the logical view, even for adversarially-chosen logical keys and
under tenant prefixes.
"""

from __future__ import annotations

import pytest

from repro.common.errors import CloudUnavailable
from repro.cloud.prefix import PrefixedObjectStore, tenant_prefix
from repro.core.recovery import plan_recovery
from repro.fsck.audit import audit_index
from repro.fsck.invariants import BucketIndex
from repro.placement import build_placement

WAL_KEYS = [f"WAL/{ts:012d}_seg_{(ts - 1) * 100}" for ts in (1, 2, 3)]
DUMP_KEY = "DB/000000000000_dump_400.0.1.0"


def protected_bucket():
    """A store carrying a recoverable Ginja layout: one complete dump
    plus a contiguous WAL run, WAL mirrored and DB striped."""
    store = build_placement(
        3, "wal=mirror-2,db=stripe-2-3,default=mirror-2",
    )
    store.put(DUMP_KEY, b"D" * 400)
    for i, key in enumerate(WAL_KEYS):
        store.put(key, bytes([i]) * 100)
    return store


class TestListingUnderOutage:
    @pytest.mark.parametrize("dead", [0, 1, 2])
    def test_list_is_outage_invariant(self, dead):
        store = protected_bucket()
        before = [(i.key, i.size) for i in store.list("")]
        store.providers[dead].kill()
        after = [(i.key, i.size) for i in store.list("")]
        assert after == before
        assert {k for k, _ in after} == set(WAL_KEYS) | {DUMP_KEY}
        store.close()

    @pytest.mark.parametrize("dead", [0, 2])
    def test_exists_and_total_bytes_from_survivors(self, dead):
        store = protected_bucket()
        total = store.total_bytes()
        store.providers[dead].kill()
        assert store.exists(DUMP_KEY)
        assert all(store.exists(key) for key in WAL_KEYS)
        assert not store.exists("WAL/999")
        assert store.total_bytes() == total == 700
        store.close()

    def test_all_providers_down_is_an_error_not_empty(self):
        store = protected_bucket()
        for provider in store.providers:
            provider.kill()
        with pytest.raises(CloudUnavailable):
            store.list("")
        store.close()

    def test_recovery_plan_unchanged_by_outage(self):
        store = protected_bucket()
        plan = plan_recovery(store.list(""))
        store.providers[0].kill()
        degraded = plan_recovery(store.list(""))
        assert [s.meta.key for s in degraded.steps] == \
            [s.meta.key for s in plan.steps]
        assert degraded.frontier_ts == plan.frontier_ts
        assert degraded.dump_ts == plan.dump_ts
        store.close()

    def test_fsck_verdict_unchanged_by_outage(self):
        store = protected_bucket()
        verdict = audit_index(BucketIndex.from_keys(
            [i.key for i in store.list("")]
        ))
        assert verdict.ok
        store.providers[1].kill()
        degraded = audit_index(BucketIndex.from_keys(
            [i.key for i in store.list("")]
        ))
        assert degraded.ok
        assert degraded.violation_count == verdict.violation_count == 0
        store.close()


class TestAdversarialKeys:
    def test_fragment_keys_never_leak_into_the_logical_view(self):
        store = build_placement(3, "db=stripe-2-3,default=mirror-2")
        store.put("DB/real", b"r" * 64)
        # A hostile logical key that *parses* as a fragment key would
        # shadow real fragments; the store must treat it as opaque
        # logical data (mirrored, since it's not under frag/).
        evil = "DB/real#1.0.2.3.64"
        store.put(evil, b"e" * 32)
        keys = {i.key for i in store.list("")}
        assert keys == {"DB/real", evil}
        assert store.get("DB/real") == b"r" * 64
        assert store.get(evil) == b"e" * 32
        store.close()

    def test_tenant_prefixes_compose_with_placement(self):
        store = build_placement(
            3, "wal=mirror-2,db=stripe-2-3,default=mirror-2",
        )
        alpha = PrefixedObjectStore(store, tenant_prefix("alpha"))
        beta = PrefixedObjectStore(store, tenant_prefix("beta"))
        alpha.put("WAL/000000000001_seg_0", b"a" * 10)
        alpha.put("DB/000000000001_dump_30.0.1.0", b"A" * 30)
        beta.put("WAL/000000000001_seg_0", b"b" * 10)
        # Each tenant sees only its own logical objects; the striped
        # object reassembles through the tenant view.
        assert {i.key for i in alpha.list("")} == {
            "WAL/000000000001_seg_0", "DB/000000000001_dump_30.0.1.0",
        }
        assert {i.key for i in beta.list("")} == {"WAL/000000000001_seg_0"}
        assert alpha.get("DB/000000000001_dump_30.0.1.0") == b"A" * 30
        store.providers[0].kill()
        assert alpha.get("DB/000000000001_dump_30.0.1.0") == b"A" * 30
        assert beta.get("WAL/000000000001_seg_0") == b"b" * 10
        store.close()
