"""PlacementStore: quorum writes, cost-ranked reads, striping, repair."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    CloudObjectNotFound,
    CloudUnavailable,
    IntegrityError,
)
from repro.placement import build_placement
from repro.placement.fragments import FRAGMENT_ROOT, parse_fragment_key


def make_store(placement="mirror-2", providers=3, seed=0):
    return build_placement(providers, placement, seed=seed)


class TestMirror:
    def test_put_reaches_the_policy_subset(self):
        store = make_store("mirror-2")
        store.put("k", b"v")
        held = [p.backend.get("k") if p.backend.exists("k") else None
                for p in store.providers]
        assert held[0] == b"v" and held[1] == b"v" and held[2] is None
        store.close()

    def test_get_fails_over_to_a_survivor(self):
        store = make_store("mirror-2")
        store.put("k", b"v")
        # Kill whichever replica ranks cheapest so the read must fail over.
        ranked = store._ranked(store.providers[:2], 1)
        ranked[0].kill()
        assert store.get("k") == b"v"
        assert store.read_failovers >= 1
        assert store.replica_errors[ranked[0].name] >= 1
        store.close()

    def test_write_quorum_enforced(self):
        store = make_store("mirror-2")  # write quorum defaults to all
        store.providers[0].kill()
        with pytest.raises(CloudUnavailable):
            store.put("k", b"v")
        store.close()

    def test_relaxed_quorum_survives_a_dead_replica(self):
        store = make_store("mirror-2/q1")
        store.providers[0].kill()
        store.put("k", b"v")
        assert store.get("k") == b"v"
        store.close()

    def test_missing_object_raises_not_found(self):
        store = make_store("mirror-2")
        with pytest.raises(CloudObjectNotFound):
            store.get("nope")
        store.close()


class TestStripe:
    def test_put_spreads_fragments_one_per_provider(self):
        store = make_store("stripe-2-3")
        store.put("DB/obj", b"x" * 1000)
        for i, provider in enumerate(store.providers):
            frags = [
                parse_fragment_key(info.key)
                for info in provider.backend.list(FRAGMENT_ROOT)
            ]
            assert len(frags) == 1 and frags[0].index == i
        store.close()

    def test_get_reassembles(self):
        store = make_store("stripe-2-3")
        data = bytes(range(256)) * 5 + b"tail"
        store.put("DB/obj", data)
        assert store.get("DB/obj") == data
        store.close()

    def test_get_survives_one_dead_provider(self):
        store = make_store("stripe-2-3")
        data = b"fragmented payload" * 40
        store.put("DB/obj", data)
        for dead in range(3):
            store.providers[dead].kill()
            assert store.get("DB/obj") == data
            store.providers[dead].revive()
        store.close()

    def test_get_fails_below_k_fragments(self):
        store = make_store("stripe-2-3")
        store.put("DB/obj", b"data")
        store.providers[0].kill()
        store.providers[1].kill()
        with pytest.raises(CloudUnavailable):
            store.get("DB/obj")
        store.close()

    def test_overwrite_bumps_generation_and_gcs_the_old_one(self):
        store = make_store("stripe-2-3")
        store.put("DB/obj", b"old " * 100)
        store.put("DB/obj", b"new!" * 100)
        assert store.get("DB/obj") == b"new!" * 100
        gens = {
            parse_fragment_key(info.key).generation
            for provider in store.providers
            for info in provider.backend.list(FRAGMENT_ROOT)
        }
        assert len(gens) == 1  # the superseded generation was deleted
        store.close()

    def test_corrupt_fragment_promotes_a_backup(self):
        store = make_store("stripe-2-3")
        data = b"precious bytes" * 64
        store.put("DB/obj", data)
        # Flip one byte of one stored fragment body, wherever it landed.
        provider = store.providers[0]
        info = provider.backend.list(FRAGMENT_ROOT)[0]
        blob = bytearray(provider.backend.get(info.key))
        blob[-1] ^= 0xFF
        provider.backend.put(info.key, bytes(blob))
        assert store.get("DB/obj") == data  # rebuilt from the other two
        store.close()


class TestLogicalView:
    def test_list_merges_mirrors_and_stripes(self):
        store = make_store("wal=mirror-2,db=stripe-2-3")
        store.put("WAL/000000000001_seg_0", b"w" * 10)
        store.put("DB/000000000001_dump_20.0.1.0", b"d" * 20)
        infos = {info.key: info.size for info in store.list("")}
        assert infos == {
            "WAL/000000000001_seg_0": 10,
            "DB/000000000001_dump_20.0.1.0": 20,
        }
        store.close()

    def test_delete_removes_all_copies_and_fragments(self):
        store = make_store("wal=mirror-2,db=stripe-2-3")
        store.put("WAL/1", b"w")
        store.put("DB/1", b"d" * 10)
        store.delete("WAL/1")
        store.delete("DB/1")
        for provider in store.providers:
            assert provider.backend.list() == []
        store.close()

    def test_exists_and_total_bytes(self):
        store = make_store("wal=mirror-2,db=stripe-2-3")
        store.put("WAL/1", b"w" * 7)
        store.put("DB/1", b"d" * 100)
        assert store.exists("WAL/1")
        assert store.exists("DB/1")
        assert not store.exists("WAL/2")
        # Logical bytes, not physical: fragments don't double-count.
        assert store.total_bytes() == 107
        store.close()


class TestLifecycle:
    def test_single_provider_fast_path_has_no_pool(self):
        store = make_store("mirror-1", providers=1)
        assert store._pool is None
        store.put("k", b"v")
        assert store.get("k") == b"v"
        store.close()

    def test_close_is_idempotent_and_fails_further_io(self):
        store = make_store("mirror-2")
        store.put("k", b"v")
        store.close()
        store.close()
        with pytest.raises(CloudUnavailable):
            store.get("k")

    def test_clone_reopens_over_the_same_providers(self):
        store = make_store("mirror-2")
        store.put("k", b"v")
        store.close()
        standby = store.clone()
        assert standby.get("k") == b"v"
        standby.close()


class TestQuorumHealth:
    def test_read_quorum_tracks_policies(self):
        store = make_store("wal=mirror-2,db=stripe-2-3,default=mirror-2")
        assert store.read_quorum_ok()
        store.providers[2].kill()
        assert store.read_quorum_ok()  # stripe still has k=2 alive
        store.providers[1].kill()
        assert not store.read_quorum_ok()
        store.close()


class TestRepair:
    def test_repair_restores_a_wiped_replacement(self):
        store = make_store("wal=mirror-2,db=stripe-2-3,default=mirror-2")
        store.put("WAL/1", b"w" * 50)
        store.put("DB/1", b"d" * 90)
        store.providers[0].kill()
        store.providers[0].revive(wipe=True)
        report = store.repair()
        assert report.copies_restored >= 1
        assert report.fragments_rebuilt >= 1
        assert sum(report.egress_bytes.values()) > 0
        # The replacement now holds its mirror copy and its fragment.
        assert store.providers[0].backend.exists("WAL/1")
        assert len(store.providers[0].backend.list(FRAGMENT_ROOT)) == 1
        # Egress was accumulated for billing attribution.
        assert sum(store.repair_egress_bytes.values()) > 0
        store.close()

    def test_repair_removes_stale_generations_and_orphans(self):
        store = make_store("db=stripe-2-3")
        store.put("DB/1", b"first" * 20)
        # Simulate a stale generation surviving on one provider: write a
        # gen-1 fragment directly, then overwrite the logical object.
        store.put("DB/1", b"second" * 20)
        stale_key = f"{FRAGMENT_ROOT}DB/1#1.0.2.3.5"
        store.providers[0].backend.put(stale_key, b"junk")
        orphan_key = f"{FRAGMENT_ROOT}DB/ghost#1.0.2.3.5"
        store.providers[1].backend.put(orphan_key, b"junk")
        report = store.repair()
        assert report.stale_deleted + report.orphans_deleted >= 2
        assert not store.providers[0].backend.exists(stale_key)
        assert not store.providers[1].backend.exists(orphan_key)
        assert store.get("DB/1") == b"second" * 20
        store.close()
