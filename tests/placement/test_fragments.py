"""Fragment codec: keys, headers, XOR parity, reassembly."""

from __future__ import annotations

import pytest

from repro.common.errors import IntegrityError
from repro.placement.fragments import (
    FragmentId,
    encode_fragments,
    decode_fragment,
    fragment_prefix,
    is_fragment_key,
    parse_fragment_key,
    reassemble,
)


def roundtrip(data: bytes, *, k=2, n=3, generation=1):
    frags = encode_fragments("DB/x", data, generation=generation, k=k, n=n)
    bodies = {
        frag.index: decode_fragment(frag, blob) for frag, blob in frags
    }
    return frags, bodies


class TestEncode:
    def test_shapes_and_keys(self):
        frags, _ = roundtrip(b"abcdefg")
        assert [f.index for f, _ in frags] == [0, 1, 2]
        assert all(f.k == 2 and f.n == 3 and f.size == 7 for f, _ in frags)
        assert frags[2][0].is_parity
        assert all(
            f.key.startswith(fragment_prefix("DB/x")) for f, _ in frags
        )
        assert all(parse_fragment_key(f.key) == f for f, _ in frags)

    def test_requires_single_parity_shape(self):
        with pytest.raises(ValueError):
            encode_fragments("k", b"x", generation=1, k=2, n=4)

    def test_empty_object(self):
        frags, bodies = roundtrip(b"")
        assert reassemble(bodies, k=2, n=3, size=0) == b""
        assert all(len(body) == 0 for body in bodies.values())


class TestReassembly:
    @pytest.mark.parametrize("size", [1, 2, 3, 64, 1001])
    def test_all_fragments(self, size):
        data = bytes(range(256)) * (size // 256 + 1)
        data = data[:size]
        _, bodies = roundtrip(data)
        assert reassemble(bodies, k=2, n=3, size=size) == data

    @pytest.mark.parametrize("missing", [0, 1])
    def test_parity_rebuilds_any_single_data_fragment(self, missing):
        data = b"the quick brown fox jumps over the lazy dog"
        _, bodies = roundtrip(data)
        del bodies[missing]
        assert reassemble(bodies, k=2, n=3, size=len(data)) == data

    def test_too_few_fragments(self):
        data = b"payload"
        _, bodies = roundtrip(data)
        del bodies[0], bodies[1]
        with pytest.raises(IntegrityError):
            reassemble(bodies, k=2, n=3, size=len(data))


class TestDecodeValidation:
    def test_corrupt_body_detected(self):
        frags = encode_fragments("k", b"payload", generation=1, k=2, n=3)
        frag, blob = frags[0]
        bad = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        with pytest.raises(IntegrityError):
            decode_fragment(frag, bad)

    def test_header_key_mismatch_detected(self):
        frags = encode_fragments("k", b"payload", generation=1, k=2, n=3)
        frag0, blob0 = frags[0]
        other = FragmentId(
            logical=frag0.logical, generation=frag0.generation,
            index=1, k=frag0.k, n=frag0.n, size=frag0.size,
        )
        with pytest.raises(IntegrityError):
            decode_fragment(other, blob0)

    def test_truncated_blob_detected(self):
        frags = encode_fragments("k", b"payload", generation=1, k=2, n=3)
        frag, blob = frags[0]
        with pytest.raises(IntegrityError):
            decode_fragment(frag, blob[:4])


class TestKeys:
    def test_non_fragment_keys_rejected(self):
        assert parse_fragment_key("WAL/000001_seg_0") is None
        assert not is_fragment_key("WAL/000001_seg_0")
        assert parse_fragment_key("frag/garbage") is None
        assert parse_fragment_key("frag/k#notanumber.0.2.3.7") is None

    def test_adversarial_logical_key_that_mimics_fragments(self):
        """A logical key that *looks like* a fragment key must still be
        recognized as a fragment key (it lives under frag/), while a
        logical key merely containing 'frag/' elsewhere must not."""
        assert is_fragment_key("frag/DB/x#1.0.2.3.7")
        assert not is_fragment_key("DB/frag/x")
        assert parse_fragment_key("DB/frag/x") is None
