"""Placement policy specs: parsing, validation, key classification."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigError
from repro.placement.policy import (
    PlacementPolicy,
    SINGLE,
    parse_placement,
    policy_for,
)


class TestParse:
    def test_bare_spec_covers_everything(self):
        policies = parse_placement("mirror-2", 3)
        assert set(policies) == {""}
        assert policies[""].mode == "mirror"
        assert policies[""].replicas == 2

    def test_per_class_spec(self):
        policies = parse_placement("wal=mirror-2/q1,db=stripe-2-3", 3)
        assert policies["WAL/"].replicas == 2
        assert policies["WAL/"].write_quorum == 1
        assert policies["DB/"].striped
        assert policies["DB/"].k == 2 and policies["DB/"].n == 3
        # Unlisted classes fall back to single-provider.
        assert policies[""] == SINGLE

    def test_stripe_quorum_suffix(self):
        policies = parse_placement("stripe-2-3/q3", 4)
        assert policies[""].effective_quorum == 3

    @pytest.mark.parametrize("spec", [
        "mirror-0", "stripe-1-2", "stripe-2-4", "mirror-2/q3",
        "stripe-2-3/q1", "raid-5", "wal=", "bogus=mirror-2", "",
    ])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            parse_placement(spec, 4)

    def test_provider_count_enforced(self):
        with pytest.raises(ConfigError):
            parse_placement("mirror-3", 2)
        with pytest.raises(ConfigError):
            parse_placement("stripe-2-3", 2)


class TestPolicyProperties:
    def test_mirror_defaults(self):
        policy = PlacementPolicy(mode="mirror", replicas=3)
        assert policy.effective_quorum == 3
        assert policy.providers_used == 3
        assert policy.storage_overhead == 3.0
        assert policy.spec == "mirror-3"

    def test_stripe_defaults(self):
        policy = PlacementPolicy(mode="stripe", k=2, n=3)
        assert policy.effective_quorum == 2
        assert policy.providers_used == 3
        assert policy.storage_overhead == 1.5
        assert policy.spec == "stripe-2-3"


class TestPolicyFor:
    POLICIES = {
        "WAL/": PlacementPolicy(mode="mirror", replicas=2),
        "DB/": PlacementPolicy(mode="stripe", k=2, n=3),
        "": SINGLE,
    }

    def test_longest_prefix_wins(self):
        assert policy_for(self.POLICIES, "WAL/000001_seg_0").replicas == 2
        assert policy_for(self.POLICIES, "DB/000001_dump_9.0.1.0").striped
        assert policy_for(self.POLICIES, "manifest") is SINGLE

    def test_tenant_prefix_is_stripped_before_classification(self):
        key = "tenants/alpha/WAL/000001_seg_0"
        assert policy_for(self.POLICIES, key).replicas == 2
