"""Table 4: database server resource usage with and without Ginja.

Configurations per DBMS: native FS, FUSE FS, Ginja 100/1000 plain,
+compression, +encryption, +both.  CPU is the measured process CPU
share during the TPC-C run; memory is the resident set plus Ginja's
queue/codec buffers.

Paper findings asserted:

* Ginja adds modest CPU over the FUSE baseline;
* compression costs more CPU than encryption;
* even C+C stays within a small multiple of the baseline ("we consider
  these costs would not be a deterrent for using Ginja").
"""

from __future__ import annotations

import pytest

from repro.harness import build_stack, run_tpcc
from repro.metrics import TextTable

from benchmarks.conftest import (
    BENCH_TPCC,
    RUN_SECONDS,
    TERMINALS,
    WARMUP_SECONDS,
    baseline_stack_config,
    ginja_stack_config,
)

CONFIGS = [
    ("Native FS", None, None),
    ("FUSE FS", None, None),
    ("100/1000", False, False),
    ("100/1000 Comp", True, False),
    ("100/1000 Crypt", False, True),
    ("100/1000 C+C", True, True),
]


def run_resources(dbms: str) -> dict[str, dict]:
    results = {}
    for label, compress, encrypt in CONFIGS:
        if label == "Native FS":
            stack = build_stack(baseline_stack_config(dbms, "native"))
        elif label == "FUSE FS":
            stack = build_stack(baseline_stack_config(dbms, "fuse"))
        else:
            stack = build_stack(
                ginja_stack_config(dbms, 100, 1000,
                                   compress=compress, encrypt=encrypt)
            )
        report = run_tpcc(
            stack,
            duration=RUN_SECONDS,
            warmup=WARMUP_SECONDS,
            terminals=TERMINALS,
            tpcc_config=BENCH_TPCC,
        )
        assert not report.tpcc.errors, report.tpcc.errors[:3]
        results[label] = dict(
            cpu_percent=report.resources.cpu_percent,
            rss_mb=report.rss_bytes / 1e6,
            codec_mb=report.ginja_stats.get("codec_bytes_in", 0) / 1e6,
            tpm_total=report.tpm_total,
            cpu_per_ktx=(
                report.resources.cpu_seconds
                / max(report.tpcc.total, 1) * 1000
            ),
        )
    return results


@pytest.mark.parametrize("dbms", ["postgres", "mysql"])
def test_table4_resource_usage(benchmark, print_report, dbms):
    results = benchmark.pedantic(run_resources, args=(dbms,), rounds=1,
                                 iterations=1)
    table = TextTable(
        ["configuration", "CPU %", "CPU s/1k tx", "RSS (MB)",
         "codec MB processed"],
        title=f"Table 4 — server resource usage, {dbms} profile "
              "(paper: 8-core Dell R410; here: CPU share of this process)",
    )
    for label, _c, _e in CONFIGS:
        row = results[label]
        table.add(label, row["cpu_percent"], row["cpu_per_ktx"],
                  row["rss_mb"], row["codec_mb"])
    print_report(table.render())

    # Normalize CPU per transaction: Ginja costs more than native.
    native = results["Native FS"]["cpu_per_ktx"]
    plain = results["100/1000"]["cpu_per_ktx"]
    cc = results["100/1000 C+C"]["cpu_per_ktx"]
    assert plain >= native * 0.9  # never cheaper beyond noise
    # The paper's ceiling: Ginja with C+C is a bounded overhead, not a
    # blow-up (paper: at most +7% of an 8-core box; here we allow 3x the
    # per-transaction CPU of native on a single core).
    assert cc < native * 3.0
    # Compression processes at least as many codec bytes as plain
    # (same pipeline), and C+C compresses data before encrypting.
    assert results["100/1000 Comp"]["codec_mb"] > 0
    assert results["100/1000 C+C"]["codec_mb"] > 0
