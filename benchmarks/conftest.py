"""Shared machinery for the paper-reproduction benchmarks.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one table or figure of the paper and prints the
same rows/series the paper reports (plus a ``paper≈`` column wherever
the paper gives a number).  Absolute throughputs differ from the paper's
Dell R410 testbed — the *shape* (who wins, by roughly what factor) is
the reproduction target; EXPERIMENTS.md records both sides.

Timing conventions (see repro.cloud.latency):

* local disk latency is modeled at full scale (15k-RPM HDD);
* cloud latencies are modeled at full scale (calibrated to Table 3) and
  slept at CLOUD_TIME_SCALE so a run takes seconds, not minutes;
* all latencies METERED in reports are unscaled (the paper's units).
"""

from __future__ import annotations

import pytest

from repro.common.units import MiB
from repro.core.config import GinjaConfig
from repro.harness import StackConfig
from repro.workloads.tpcc import TPCCConfig

#: Fraction of modeled cloud latency actually slept during runs.
CLOUD_TIME_SCALE = 0.1
#: Measured seconds per TPC-C run (the paper runs five minutes).
RUN_SECONDS = 2.5
WARMUP_SECONDS = 0.4
TERMINALS = 4

#: One-warehouse TPC-C at the library's standard scale-down.
BENCH_TPCC = TPCCConfig(warehouses=1)


def ginja_stack_config(dbms: str, batch: int, safety: int, *,
                       compress: bool = False, encrypt: bool = False,
                       **extra) -> StackConfig:
    """A Figure-5-style Ginja setup for one (B, S) cell."""
    ginja = GinjaConfig(
        batch=batch,
        safety=safety,
        batch_timeout=1.0,
        safety_timeout=10.0,
        uploaders=5,  # the paper's best setting
        compress=compress,
        encrypt=encrypt,
        password="bench-password" if encrypt else None,
        **extra,
    )
    return StackConfig(
        dbms=dbms,
        fs_mode="ginja",
        ginja=ginja,
        wal_segment_size=4 * MiB,
        cloud_time_scale=CLOUD_TIME_SCALE,
    )


def baseline_stack_config(dbms: str, fs_mode: str) -> StackConfig:
    return StackConfig(dbms=dbms, fs_mode=fs_mode, wal_segment_size=4 * MiB)


@pytest.fixture(scope="session")
def print_report():
    """Collects rendered tables and prints them at session end (pytest
    captures stdout per-test; the summary block is what you read)."""
    blocks: list[str] = []

    def record(text: str) -> None:
        blocks.append(text)
        print("\n" + text + "\n")

    yield record
    if blocks:
        print("\n" + "=" * 72)
        print("PAPER REPRODUCTION SUMMARY")
        print("=" * 72)
        for block in blocks:
            print()
            print(block)
