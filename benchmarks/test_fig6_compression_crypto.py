"""Figure 6: effect of compression and encryption on TPC-C throughput.

For (B, S) in {(10,100), (100,1000), (1000,10000)} and each codec
combination {plain, Comp, Crypt, C+C}, per DBMS profile.

Paper findings asserted:

* PostgreSQL: the codecs move throughput only slightly (compression can
  even help, by shrinking upload latency);
* MySQL: "basically no changes" — its 512-byte WAL blocks leave little
  for the codec to bite on;
* in no case does a codec collapse throughput.
"""

from __future__ import annotations

import pytest

from repro.harness import build_stack, run_tpcc
from repro.metrics import TextTable

from benchmarks.conftest import (
    BENCH_TPCC,
    RUN_SECONDS,
    TERMINALS,
    WARMUP_SECONDS,
    ginja_stack_config,
)

BS_GRID = [(10, 100), (100, 1000), (1000, 10000)]
CODECS = [
    ("plain", dict(compress=False, encrypt=False)),
    ("Comp", dict(compress=True, encrypt=False)),
    ("Crypt", dict(compress=False, encrypt=True)),
    ("C+C", dict(compress=True, encrypt=True)),
]


def run_grid(dbms: str) -> dict[tuple, tuple[float, float]]:
    results = {}
    for batch, safety in BS_GRID:
        for codec_label, codec_kwargs in CODECS:
            stack = build_stack(
                ginja_stack_config(dbms, batch, safety, **codec_kwargs)
            )
            report = run_tpcc(
                stack,
                duration=RUN_SECONDS,
                warmup=WARMUP_SECONDS,
                terminals=TERMINALS,
                tpcc_config=BENCH_TPCC,
            )
            assert not report.tpcc.errors, report.tpcc.errors[:3]
            results[(batch, safety, codec_label)] = (
                report.tpm_c, report.tpm_total,
            )
    return results


@pytest.mark.parametrize("dbms", ["postgres", "mysql"])
def test_figure6_codecs(benchmark, print_report, dbms):
    results = benchmark.pedantic(run_grid, args=(dbms,), rounds=1, iterations=1)
    table = TextTable(
        ["B/S", "codec", "Tpm-C", "Tpm-Total"],
        title=f"Figure 6{'a' if dbms == 'postgres' else 'b'} — "
              f"compression/encryption effect, {dbms} profile",
    )
    for batch, safety in BS_GRID:
        for codec_label, _ in CODECS:
            tpm_c, tpm_total = results[(batch, safety, codec_label)]
            table.add(f"{batch}/{safety}", codec_label, tpm_c, tpm_total)
    print_report(table.render())

    # Codecs never collapse throughput (paper: effects are small for PG,
    # negligible for MySQL).  Generous band for a 1-core CI box.
    for batch, safety in BS_GRID:
        plain = results[(batch, safety, "plain")][1]
        for codec_label, _ in CODECS[1:]:
            with_codec = results[(batch, safety, codec_label)][1]
            assert with_codec > 0.5 * plain, (
                f"{codec_label} at B={batch}/S={safety} collapsed: "
                f"{with_codec} vs {plain}"
            )
