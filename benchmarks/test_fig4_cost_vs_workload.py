"""Figure 4: Ginja's monthly cost vs. workload for B in {10, 100, 1000}.

Setup exactly as §7.2: 10 GB database on Amazon S3, 8 kB WAL pages with
75 records, checkpoints every 60 minutes lasting 20, compression ratio
1.43.  The paper's qualitative findings, asserted below:

* B dominates total cost, and more so under heavier workloads;
* many configurations stay under $1/month;
* the 10 GB database pins C_DB_Storage at ~$0.20.
"""

from __future__ import annotations

from repro.costmodel import GinjaCostModel, WorkloadSpec
from repro.metrics import TextTable

WORKLOADS = (10, 30, 100, 300, 1000)
BATCHES = (1000, 100, 10)


def build_figure4() -> tuple[TextTable, dict]:
    model = GinjaCostModel()
    table = TextTable(
        ["updates/min"] + [f"B={b} ($/mo)" for b in BATCHES],
        title="Figure 4 — monthly cost vs workload (10GB DB, S3 May-2017)",
    )
    series: dict[int, list[float]] = {b: [] for b in BATCHES}
    for w in WORKLOADS:
        spec = WorkloadSpec(updates_per_minute=float(w))
        row = [w]
        for b in BATCHES:
            total = model.monthly_cost(spec, b).total
            series[b].append(total)
            row.append(total)
        table.add(*row)
    return table, series


def test_figure4_cost_curves(benchmark, print_report):
    table, series = benchmark(build_figure4)
    print_report(table.render())

    # Larger B is never more expensive (B only divides PUT count).
    for heavier, lighter in ((10, 100), (100, 1000)):
        assert all(
            a >= b for a, b in zip(series[heavier], series[lighter])
        )
    # Cost grows with workload within a series.
    for batch in BATCHES:
        costs = series[batch]
        assert all(a <= b for a, b in zip(costs, costs[1:]))
    # Paper anchor: B=10 at 10 updates/min is ~$0.42/month.
    assert abs(series[10][0] - 0.42) < 0.05
    # Fixed storage floor: ~$0.20 for the 10 GB database (§7.2).
    model = GinjaCostModel()
    floor = model.db_storage_cost(WorkloadSpec())
    assert abs(floor - 0.20) < 0.01
    # "plenty of configurations below $1": count them.
    below = sum(1 for b in BATCHES for cost in series[b] if cost < 1.0)
    assert below >= 7
