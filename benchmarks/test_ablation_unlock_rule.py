"""Ablation: the consecutive-timestamp unlock rule (Alg. 2, lines 20-22).

Ginja frees CommitQueue slots only for the longest *prefix* of
acknowledged batches, because parallel uploaders complete out of order
and recovery can only use WAL objects with consecutive timestamps
(§5.3).  This ablation removes the rule — slots are freed on ANY ack —
and shows the consequence: under out-of-order completion, the number of
updates unusable at disaster time exceeds the S the operator configured.
"""

from __future__ import annotations

import threading
import time

from repro.common.events import EventBus
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import CommitPipeline
from repro.core.config import GinjaConfig
from repro.metrics import TextTable

SAFETY = 8
UPDATES = 60


class UnsafeUnlockPipeline(CommitPipeline):
    """The ablated variant: frees queue slots for any acked batch."""

    def _remove_completed_prefix_locked(self) -> None:
        for batch_id in sorted(self._acked):
            count = self._batch_sizes.pop(batch_id)
            self._acked.remove(batch_id)
            # Out-of-order removal: just drop `count` entries from the
            # head regardless of which batch they belong to.
            for _ in range(min(count, len(self._entries))):
                self._entries.popleft()
            self._claimed = max(0, self._claimed - count)
            if batch_id == self._next_batch_to_remove:
                self._next_batch_to_remove += 1
            self._last_sync_end = self._clock.now()
            self._tb_anchor = self._last_sync_end
        self._cond.notify_all()


class FirstPutStalls(InMemoryObjectStore):
    """Every 4th WAL object hangs until released — persistent
    out-of-order completion, as a slow replica link would cause."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self._count = 0
        self._lock = threading.Lock()

    def put(self, key, data):
        with self._lock:
            self._count += 1
            stall = key.startswith("WAL/") and self._count % 4 == 1
        if stall:
            self.release.wait(timeout=30)
        super().put(key, data)


def run_variant(pipeline_cls) -> dict:
    backend = FirstPutStalls()
    cloud = SimulatedCloud(backend=backend, time_scale=0.0)
    config = GinjaConfig(batch=2, safety=SAFETY, batch_timeout=0.01,
                         safety_timeout=60.0, uploaders=3)
    view = CloudView()
    bus = EventBus()
    transport = build_transport(cloud, config, bus=bus)
    pipeline = pipeline_cls(config, transport, ObjectCodec(), view, bus)
    pipeline.start()
    submitted = 0
    deadline = time.monotonic() + 6.0
    try:
        while submitted < UPDATES and time.monotonic() < deadline:
            blocked = threading.Event()

            def one_write(n=submitted):
                pipeline.submit("seg", n * 512, b"update")
                blocked.set()

            writer = threading.Thread(target=one_write, daemon=True)
            writer.start()
            if not blocked.wait(timeout=0.5):
                break  # the pipeline correctly back-pressured us
            submitted += 1
        # Disaster strikes now: what is actually usable in the cloud?
        usable = view.confirmed_ts() + 1  # objects recovery can apply
        lost = submitted - min(submitted, _updates_covered(view, usable))
    finally:
        backend.release.set()
        pipeline.stop(drain_timeout=5.0)
    return dict(submitted=submitted, usable_objects=usable, lost=lost)


def _updates_covered(view: CloudView, usable_objects: int) -> int:
    # Each WAL object here covers one batch of <= 2 distinct updates.
    return usable_objects * 2


def test_ablation_unlock_rule(benchmark, print_report):
    results = benchmark.pedantic(
        lambda: {
            "safe (paper)": run_variant(CommitPipeline),
            "ablated (any-ack unlock)": run_variant(UnsafeUnlockPipeline),
        },
        rounds=1, iterations=1,
    )
    table = TextTable(
        ["variant", "updates acknowledged", "lost at disaster",
         "S (configured bound)"],
        title="Ablation — consecutive-ts unlock rule under out-of-order "
              "upload completion",
    )
    for label, row in results.items():
        table.add(label, row["submitted"], row["lost"], SAFETY)
    print_report(table.render())

    safe = results["safe (paper)"]
    ablated = results["ablated (any-ack unlock)"]
    # The paper's rule keeps potential loss within S plus one in-flight
    # batch; the ablated variant lets acknowledged-but-unusable updates
    # accumulate beyond the bound.
    assert safe["lost"] <= SAFETY + 2
    assert ablated["lost"] > safe["lost"]
    assert ablated["lost"] > SAFETY + 2
