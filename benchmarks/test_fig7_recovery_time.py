"""Figure 7: recovery time vs. database size (TPC-C warehouses).

After a crash mid-TPC-C, the database is rebuilt from the bucket on
(a) an on-premises server over WAN, and (b) an EC2 VM in the bucket's
region.  The modeled recovery time is the sum of the modeled request
latencies (recovery's GETs are sequential) plus the measured local
compute time.

Paper findings asserted:

* recovery time grows with the number of warehouses;
* the same-region VM recovers markedly faster than on-premises
  (Figure 7's two series);
* the recovered database serves the TPC-C rows.
"""

from __future__ import annotations

from repro.cloud.latency import SAME_REGION_LATENCY, WAN_LATENCY
from repro.harness import build_stack, measure_recovery, run_tpcc
from repro.metrics import TextTable
from repro.workloads.tpcc import TPCCConfig

from benchmarks.conftest import TERMINALS, WARMUP_SECONDS, ginja_stack_config

WAREHOUSES = (1, 5, 10)


def build_bucket(warehouses: int):
    """Run TPC-C briefly under Ginja and return the surviving bucket."""
    config = ginja_stack_config("postgres", 100, 1000)
    stack = build_stack(config)
    report = run_tpcc(
        stack,
        duration=1.5,
        warmup=WARMUP_SECONDS,
        terminals=TERMINALS,
        tpcc_config=TPCCConfig(warehouses=warehouses),
        checkpoint_mid_run=True,
    )
    assert not report.tpcc.errors, report.tpcc.errors[:3]
    return stack.cloud.backend, config


def run_experiment() -> list[dict]:
    rows = []
    for warehouses in WAREHOUSES:
        bucket, config = build_bucket(warehouses)
        measurements = {}
        for series, network in (
            ("on-premises", WAN_LATENCY),
            ("EC2 same-region", SAME_REGION_LATENCY),
        ):
            report = measure_recovery(
                bucket,
                config.profile,
                ginja_config=config.ginja,
                engine_config=config.engine_config(),
                network=network,
                row_table="orders",
            )
            measurements[series] = report
        rows.append(dict(warehouses=warehouses, **measurements))
    return rows


def test_figure7_recovery_time(benchmark, print_report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = TextTable(
        ["warehouses", "bucket MB", "on-prem recovery (min)",
         "EC2 recovery (min)", "orders recovered"],
        title="Figure 7 — recovery time vs database size "
              "(paper: up to ~3.5 min on-prem at 10 warehouses)",
    )
    for row in rows:
        on_prem = row["on-premises"]
        ec2 = row["EC2 same-region"]
        table.add(
            row["warehouses"],
            on_prem.bytes_downloaded / 1e6,
            on_prem.total_minutes,
            ec2.total_minutes,
            on_prem.recovered_rows,
        )
    print_report(table.render())

    on_prem_times = [row["on-premises"].total_minutes for row in rows]
    ec2_times = [row["EC2 same-region"].total_minutes for row in rows]
    # Recovery time grows with database size.
    assert on_prem_times[0] < on_prem_times[-1]
    # The same-region VM is markedly faster (paper's second series).
    for wan, ec2 in zip(on_prem_times, ec2_times):
        assert ec2 < wan * 0.5
    # Data actually comes back.
    assert all(row["on-premises"].recovered_rows > 0 for row in rows)
