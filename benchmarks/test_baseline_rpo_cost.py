"""Baseline comparison: Ginja vs continuous archiving vs Backup&Restore.

The paper's positioning (§2, §9): Ginja occupies a new point between
Backup & Restore (cheap, huge RPO) and Pilot-Light replicas (tight RPO,
expensive), and beats PostgreSQL's continuous archiving because the
archiver "only operates over completed WAL segments, and thus ... does
not provide any fine-grained control over the RPO".

This benchmark drives the same committed workload through all three
mechanisms, pulls the plug *without draining*, recovers each from its
bucket, and reports: updates lost (the realized RPO), requests issued,
bytes uploaded, and the S3 monthly run-rate.

Expected shape (asserted):

* Ginja's loss ≤ S + one batch; both baselines lose (much) more;
* Backup & Restore loses everything since the last snapshot;
* the archiver loses the in-progress segment's worth of commits.
"""

from __future__ import annotations

import time

from repro.baselines import (
    ArchiveRecovery,
    ContinuousArchiver,
    SnapshotBackup,
    restore_latest_snapshot,
)
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.pricing import S3_STANDARD_2017
from repro.cloud.simulated import SimulatedCloud
from repro.common.units import KiB
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.metrics import TextTable
from repro.storage.interposer import InterposedFS
from repro.storage.memory import MemoryFileSystem

UPDATES = 1700  # deliberately NOT a multiple of SNAPSHOT_EVERY: the
                # disaster lands mid-interval, as real disasters do
VALUE_BYTES = 400
SEGMENT = 128 * KiB
SAFETY, BATCH = 100, 10
SNAPSHOT_EVERY = 500  # updates per Backup&Restore snapshot

ENGINE = EngineConfig(wal_segment_size=SEGMENT, auto_checkpoint=False)


def _workload(db) -> None:
    for i in range(UPDATES):
        db.put("t", f"k{i}", bytes([i % 251]) * VALUE_BYTES)


def _count_recovered(fs) -> int:
    db = MiniDB.open(fs, POSTGRES_PROFILE, ENGINE)
    return sum(1 for i in range(UPDATES) if db.get("t", f"k{i}") is not None)


def run_ginja() -> dict:
    cloud = SimulatedCloud(backend=InMemoryObjectStore(), time_scale=0.0)
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    config = GinjaConfig(batch=BATCH, safety=SAFETY, batch_timeout=0.5,
                         safety_timeout=30.0)
    ginja = Ginja(disk, cloud, POSTGRES_PROFILE, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
    started = time.monotonic()
    _workload(db)
    elapsed = time.monotonic() - started
    # Disaster: no drain, no stop — whatever is in flight is lost.
    meter = cloud.meter
    stats = dict(
        puts=meter.puts.count,
        uploaded_mb=meter.puts.bytes / 1e6,
        monthly=S3_STANDARD_2017.monthly_run_rate(meter, max(elapsed, 1e-6)),
    )
    target = MemoryFileSystem()
    ginja2, _report = Ginja.recover(cloud, target, POSTGRES_PROFILE, config)
    stats["recovered"] = _count_recovered(target)
    ginja2.stop()
    ginja.stop(drain_timeout=0.1)
    return stats


def run_archiver() -> dict:
    inner = MemoryFileSystem()
    backend = InMemoryObjectStore()
    cloud = SimulatedCloud(backend=backend, time_scale=0.0)
    fs = InterposedFS(inner, None)
    db = MiniDB.create(fs, POSTGRES_PROFILE, ENGINE)
    archiver = ContinuousArchiver(inner, cloud, POSTGRES_PROFILE)
    fs.set_interceptor(archiver)
    db.checkpoint()
    archiver.base_backup()
    started = time.monotonic()
    _workload(db)
    elapsed = time.monotonic() - started
    meter = cloud.meter
    stats = dict(
        puts=meter.puts.count,
        uploaded_mb=meter.puts.bytes / 1e6,
        monthly=S3_STANDARD_2017.monthly_run_rate(meter, max(elapsed, 1e-6)),
    )
    target = MemoryFileSystem()
    ArchiveRecovery.restore(cloud, target, POSTGRES_PROFILE)
    stats["recovered"] = _count_recovered(target)
    return stats


def run_snapshots() -> dict:
    fs = MemoryFileSystem()
    backend = InMemoryObjectStore()
    cloud = SimulatedCloud(backend=backend, time_scale=0.0)
    db = MiniDB.create(fs, POSTGRES_PROFILE, ENGINE)
    backup = SnapshotBackup(fs, cloud)
    started = time.monotonic()
    for i in range(UPDATES):
        db.put("t", f"k{i}", bytes([i % 251]) * VALUE_BYTES)
        if (i + 1) % SNAPSHOT_EVERY == 0:
            db.checkpoint()
            backup.take_snapshot()
    elapsed = time.monotonic() - started
    meter = cloud.meter
    stats = dict(
        puts=meter.puts.count,
        uploaded_mb=meter.puts.bytes / 1e6,
        monthly=S3_STANDARD_2017.monthly_run_rate(meter, max(elapsed, 1e-6)),
    )
    target = MemoryFileSystem()
    restore_latest_snapshot(cloud, target)
    stats["recovered"] = _count_recovered(target)
    return stats


def test_baseline_rpo_and_cost(benchmark, print_report):
    results = benchmark.pedantic(
        lambda: {
            f"Ginja B={BATCH} S={SAFETY}": run_ginja(),
            "continuous archiving": run_archiver(),
            f"Backup&Restore (every {SNAPSHOT_EVERY})": run_snapshots(),
        },
        rounds=1, iterations=1,
    )
    table = TextTable(
        ["mechanism", "updates lost", "PUTs", "uploaded MB"],
        title=f"Baselines — realized RPO after a no-warning disaster "
              f"({UPDATES} committed updates, {SEGMENT // 1024} KiB segments)",
    )
    losses = {}
    for label, stats in results.items():
        lost = UPDATES - stats["recovered"]
        losses[label] = lost
        table.add(label, lost, stats["puts"], stats["uploaded_mb"])
    print_report(table.render())

    ginja_label = f"Ginja B={BATCH} S={SAFETY}"
    snap_label = f"Backup&Restore (every {SNAPSHOT_EVERY})"
    # Ginja honors its configured bound.
    assert losses[ginja_label] <= SAFETY + BATCH
    # Backup&Restore loses everything since the last snapshot.
    assert losses[snap_label] == UPDATES % SNAPSHOT_EVERY
    # Both baselines lose more than Ginja (the paper's point).
    assert losses["continuous archiving"] > losses[ginja_label]
    assert losses[snap_label] > losses[ginja_label]
