"""Table 3: Ginja's use of the storage cloud during TPC-C.

For each configuration B/S in {10/100, 100/1000, 1000/10000}, plain and
with compression+encryption (C+C), per DBMS: the number of PUTs, the
mean object size, and the mean (modeled) PUT latency.

Paper findings asserted:

* growing B by 10x cuts the PUT count steeply (paper: -80% then -70%);
* object size grows with B, but sublinearly (page coalescing);
* PUT latency grows with object size, sublinearly;
* C+C shrinks objects (paper: ~-37% for PG) and with them the latency.
"""

from __future__ import annotations

import pytest

from repro.harness import build_stack, run_tpcc
from repro.metrics import TextTable

from benchmarks.conftest import (
    BENCH_TPCC,
    RUN_SECONDS,
    TERMINALS,
    WARMUP_SECONDS,
    ginja_stack_config,
)

CONFIGS = [
    (10, 100, False),
    (10, 100, True),
    (100, 1000, False),
    (100, 1000, True),
    (1000, 10000, False),
    (1000, 10000, True),
]


def run_usage(dbms: str) -> dict[tuple, dict]:
    results = {}
    for batch, safety, codec in CONFIGS:
        stack = build_stack(
            ginja_stack_config(dbms, batch, safety,
                               compress=codec, encrypt=codec)
        )
        report = run_tpcc(
            stack,
            duration=RUN_SECONDS,
            warmup=WARMUP_SECONDS,
            terminals=TERMINALS,
            tpcc_config=BENCH_TPCC,
        )
        assert not report.tpcc.errors, report.tpcc.errors[:3]
        results[(batch, safety, codec)] = dict(
            puts=report.cloud_puts,
            mean_object_kb=report.cloud_mean_object_bytes / 1000,
            mean_put_latency=report.cloud_mean_put_latency,
            tpm_total=report.tpm_total,
        )
    return results


@pytest.mark.parametrize("dbms", ["postgres", "mysql"])
def test_table3_cloud_usage(benchmark, print_report, dbms):
    results = benchmark.pedantic(run_usage, args=(dbms,), rounds=1,
                                 iterations=1)
    table = TextTable(
        ["configuration", "num PUTs", "object size (kB)", "PUT latency (s)"],
        title=f"Table 3 — cloud usage during {RUN_SECONDS:.0f}s of TPC-C, "
              f"{dbms} profile (paper measures 5 min from Lisbon)",
    )
    for batch, safety, codec in CONFIGS:
        row = results[(batch, safety, codec)]
        label = f"{batch}/{safety} {'C+C' if codec else 'plain'}"
        table.add(label, row["puts"], row["mean_object_kb"],
                  row["mean_put_latency"])
    print_report(table.render())

    plain10 = results[(10, 100, False)]
    plain100 = results[(100, 1000, False)]
    plain1000 = results[(1000, 10000, False)]
    # Bigger batches -> far fewer PUTs (paper: -80%, then -70%).
    assert plain100["puts"] < plain10["puts"] * 0.65
    assert plain1000["puts"] < plain100["puts"] * 0.75
    # Bigger batches -> bigger objects, but sublinearly (coalescing).
    assert plain100["mean_object_kb"] > plain10["mean_object_kb"]
    assert plain1000["mean_object_kb"] > plain100["mean_object_kb"]
    assert plain1000["mean_object_kb"] < plain10["mean_object_kb"] * 100
    # Latency grows with object size.
    assert plain1000["mean_put_latency"] > plain10["mean_put_latency"]
    # C+C shrinks objects.
    for batch, safety in ((100, 1000), (1000, 10000)):
        plain = results[(batch, safety, False)]["mean_object_kb"]
        codec = results[(batch, safety, True)]["mean_object_kb"]
        assert codec < plain
