"""Figure 5: TPC-C throughput under Ginja configurations.

For each DBMS profile, runs TPC-C over: the native file system ("ext4"),
a plain interposer ("FUSE"), the paper's (B, S) grid, and the No-Loss
configuration (S = B = 1, synchronous replication).

Absolute Tpm differs from the paper's testbed; the asserted shape is the
paper's finding set:

* FUSE costs a few percent vs native;
* with sufficiently high B and S, Ginja's extra loss vs FUSE is small;
* shrinking S (and B) degrades throughput as the DBMS blocks on the
  cloud;
* No-Loss collapses to a small fraction of native throughput.
"""

from __future__ import annotations

import pytest

from repro.harness import build_stack, run_tpcc
from repro.metrics import TextTable

from benchmarks.conftest import (
    BENCH_TPCC,
    RUN_SECONDS,
    TERMINALS,
    WARMUP_SECONDS,
    baseline_stack_config,
    ginja_stack_config,
)

#: The paper's Figure-5 x-axis, left to right.
GRID = [
    ("ext4", None),
    ("FUSE", None),
    ("S=10000 B=1000", (1000, 10000)),
    ("S=10000 B=100", (100, 10000)),
    ("S=10000 B=10", (10, 10000)),
    ("S=1000 B=100", (100, 1000)),
    ("S=1000 B=10", (10, 1000)),
    ("S=1000 B=1", (1, 1000)),
    ("S=100 B=10", (10, 100)),
    ("S=100 B=1", (1, 100)),
    ("S=10 B=1", (1, 10)),
    ("No-Loss (S=B=1)", (1, 1)),
]


def run_grid(dbms: str) -> dict[str, tuple[float, float]]:
    results: dict[str, tuple[float, float]] = {}
    for label, bs in GRID:
        if label == "ext4":
            stack = build_stack(baseline_stack_config(dbms, "native"))
        elif label == "FUSE":
            stack = build_stack(baseline_stack_config(dbms, "fuse"))
        else:
            batch, safety = bs
            stack = build_stack(ginja_stack_config(dbms, batch, safety))
        report = run_tpcc(
            stack,
            duration=RUN_SECONDS,
            warmup=WARMUP_SECONDS,
            terminals=TERMINALS,
            tpcc_config=BENCH_TPCC,
        )
        assert not report.tpcc.errors, report.tpcc.errors[:3]
        results[label] = (report.tpm_c, report.tpm_total)
    return results


@pytest.mark.parametrize("dbms", ["postgres", "mysql"])
def test_figure5_throughput(benchmark, print_report, dbms):
    results = benchmark.pedantic(run_grid, args=(dbms,), rounds=1, iterations=1)

    table = TextTable(
        ["configuration", "Tpm-C", "Tpm-Total", "% of native"],
        title=f"Figure 5{'a' if dbms == 'postgres' else 'b'} — "
              f"TPC-C throughput, {dbms} profile "
              f"(paper: native~{6500 if dbms == 'postgres' else 11000}, "
              f"No-Loss {248 if dbms == 'postgres' else 348} Tpm-Total)",
    )
    native_total = results["ext4"][1]
    for label, _bs in GRID:
        tpm_c, tpm_total = results[label]
        table.add(label, tpm_c, tpm_total,
                  f"{100 * tpm_total / native_total:.0f}%")
    print_report(table.render())

    fuse_total = results["FUSE"][1]
    best_total = results["S=10000 B=1000"][1]
    no_loss_total = results["No-Loss (S=B=1)"][1]
    tight_total = results["S=10 B=1"][1]

    # FUSE near native (paper: -7%/-12%); generous noise band.
    assert fuse_total >= 0.75 * native_total
    # A well-provisioned Ginja stays close to the FUSE baseline
    # (paper: -3.7% PG / -1.1% MySQL).
    assert best_total >= 0.70 * fuse_total
    # Small S+B degrade throughput vs the best configuration.
    assert tight_total < best_total
    # No-Loss collapses (paper: ~4% of native).
    assert no_loss_total < 0.45 * native_total
    assert no_loss_total <= tight_total * 1.10
