"""Figure 1: database size vs. synchronizations/hour for $1/month on S3.

Regenerates the frontier curve and checks the paper's three anchor
setups: A (35 GB @ 50 sync/h), B (20 GB @ 120/h), C (4.3 GB @ 240/h).
"""

from __future__ import annotations

from repro.costmodel import BudgetFrontier
from repro.metrics import TextTable

PAPER_ANCHORS = [
    # (label, syncs/hour, paper's GB, overhead factor the anchor assumes)
    ("A", 50.0, 35.0, 1.0),
    ("B", 120.0, 20.0, 1.25),
    ("C", 240.0, 4.3, 1.25),
]


def build_figure1() -> TextTable:
    table = TextTable(
        ["syncs/hour", "max DB size (GB)", "max size w/ 1.25x overhead (GB)"],
        title="Figure 1 — $1/month capacity frontier (May-2017 S3)",
    )
    plain = BudgetFrontier(1.0)
    overhead = BudgetFrontier(1.0, storage_overhead=1.25)
    for rate in (0, 25, 50, 75, 100, 125, 150, 175, 200, 225, 250):
        table.add(rate, plain.max_db_size_gb(rate),
                  overhead.max_db_size_gb(rate))
    return table


def test_figure1_frontier(benchmark, print_report):
    table = benchmark(build_figure1)
    anchors = TextTable(
        ["setup", "syncs/hour", "paper GB", "model GB"],
        title="Figure 1 anchors (paper's setups A/B/C)",
    )
    for label, rate, paper_gb, overhead in PAPER_ANCHORS:
        frontier = BudgetFrontier(1.0, storage_overhead=overhead)
        model_gb = frontier.max_db_size_gb(rate)
        anchors.add(label, rate, paper_gb, model_gb)
        assert abs(model_gb - paper_gb) / paper_gb < 0.15
    print_report(table.render() + "\n\n" + anchors.render())

    # Qualitative claims of §3.
    frontier = BudgetFrontier(1.0)
    assert frontier.affordable(4.3, 220.0)
    assert not frontier.affordable(43.0, 240.0)
    assert abs(frontier.business_hours_rate_multiplier(8.0) - 3.0) < 1e-9
