"""Ablation: Uploader thread pool size.

The paper runs five Uploader threads ("which corresponds to the best
setup in our environment", §8) to hide PUT latency behind parallelism.
This sweep measures how fast the pipeline drains a fixed burst of
updates with 1..8 uploaders against the WAN latency model.
"""

from __future__ import annotations

import time

from repro.common.events import EventBus
from repro.cloud.latency import WAN_LATENCY
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import CommitPipeline
from repro.core.config import GinjaConfig
from repro.metrics import TextTable

UPLOADERS = (1, 2, 5, 8)
BURST = 120           # updates, at distinct page offsets (no coalescing)
TIME_SCALE = 0.05     # sleep 5% of the modeled WAN latency


def run_pool(uploaders: int) -> dict:
    cloud = SimulatedCloud(
        backend=InMemoryObjectStore(),
        latency=WAN_LATENCY,
        time_scale=TIME_SCALE,
    )
    config = GinjaConfig(batch=4, safety=BURST + 8, batch_timeout=0.01,
                         safety_timeout=120.0, uploaders=uploaders)
    view = CloudView()
    bus = EventBus()
    transport = build_transport(cloud, config, bus=bus)
    pipeline = CommitPipeline(config, transport, ObjectCodec(), view, bus)
    pipeline.start()
    started = time.monotonic()
    try:
        for n in range(BURST):
            pipeline.submit("seg", n * 8192, b"p" * 512)
        assert pipeline.drain(timeout=120.0)
    finally:
        pipeline.stop(drain_timeout=5.0)
    wall = time.monotonic() - started
    return dict(
        wall_seconds=wall,
        modeled_put_seconds=cloud.meter.puts.latency_total,
        puts=cloud.meter.puts.count,
    )


def test_ablation_uploader_pool(benchmark, print_report):
    results = benchmark.pedantic(
        lambda: {n: run_pool(n) for n in UPLOADERS},
        rounds=1, iterations=1,
    )
    table = TextTable(
        ["uploaders", "drain wall (s)", "PUTs", "speedup vs 1"],
        title=f"Ablation — uploader parallelism "
              f"(burst of {BURST} updates over modeled WAN, paper uses 5)",
    )
    base = results[1]["wall_seconds"]
    for n in UPLOADERS:
        row = results[n]
        table.add(n, row["wall_seconds"], row["puts"],
                  f"{base / row['wall_seconds']:.1f}x")
    print_report(table.render())

    # Parallel uploads hide latency: 5 uploaders beat 1 clearly.
    assert results[5]["wall_seconds"] < results[1]["wall_seconds"] * 0.6
    # Same number of objects regardless of pool size.
    puts = {results[n]["puts"] for n in UPLOADERS}
    assert len(puts) == 1
