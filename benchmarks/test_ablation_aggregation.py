"""Ablation: WAL write aggregation / page coalescing (Alg. 2, line 12).

The DBMS rewrites the current WAL page as it fills, so a batch of B
updates usually touches far fewer distinct pages than B.  Coalescing
those rewrites is, per §5.3, where Ginja's upload savings come from:
"by aggregating them we coalesce many updates in a single cloud object
upload", reducing storage and PUTs and thus cost.

This ablation disables coalescing (every intercepted write ships
verbatim) and compares uploaded bytes and monthly cost.
"""

from __future__ import annotations

from repro.cloud.pricing import S3_STANDARD_2017
from repro.harness import build_stack, run_tpcc
from repro.metrics import TextTable

from benchmarks.conftest import (
    BENCH_TPCC,
    TERMINALS,
    WARMUP_SECONDS,
    ginja_stack_config,
)

RUN = 2.0


def run_variant(coalesce: bool) -> dict:
    config = ginja_stack_config("postgres", 100, 1000)
    config.ginja.coalesce_writes = coalesce
    stack = build_stack(config)
    report = run_tpcc(
        stack, duration=RUN, warmup=WARMUP_SECONDS, terminals=TERMINALS,
        tpcc_config=BENCH_TPCC,
    )
    assert not report.tpcc.errors
    elapsed = stack.cloud.elapsed() if stack.cloud else RUN
    return dict(
        puts=report.cloud_puts,
        uploaded_mb=report.cloud_put_bytes / 1e6,
        mean_object_kb=report.cloud_mean_object_bytes / 1000,
        tpm_total=report.tpm_total,
    )


def test_ablation_aggregation(benchmark, print_report):
    results = benchmark.pedantic(
        lambda: {
            "coalescing (paper)": run_variant(True),
            "ablated (ship every write)": run_variant(False),
        },
        rounds=1, iterations=1,
    )
    table = TextTable(
        ["variant", "PUTs", "uploaded MB", "mean object kB"],
        title="Ablation — WAL page coalescing (B=100/S=1000, TPC-C)",
    )
    for label, row in results.items():
        table.add(label, row["puts"], row["uploaded_mb"],
                  row["mean_object_kb"])
    print_report(table.render())

    with_coalesce = results["coalescing (paper)"]
    without = results["ablated (ship every write)"]
    # Shipping every write inflates the uploaded volume substantially.
    assert without["uploaded_mb"] > with_coalesce["uploaded_mb"] * 1.5
    assert without["mean_object_kb"] > with_coalesce["mean_object_kb"]
