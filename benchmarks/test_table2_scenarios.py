"""Table 2: Ginja vs. EC2 Pilot-Light for the clinical deployments,
plus §7.3's recovery costs.

Every cell of the paper's Table 2 is regenerated and checked within 5%:

=====================  ====================  ==============
configuration          Ginja with S3         EC2 VMs
=====================  ====================  ==============
Laboratory (10GB)      $0.42 / $1.50         $93.4
Hospital (1TB)         $20.3 / $21.4         $291.5
=====================  ====================  ==============
"""

from __future__ import annotations

from repro.costmodel import (
    HOSPITAL,
    LABORATORY,
    M3_LARGE_PILOT_LIGHT,
    M3_MEDIUM_PILOT_LIGHT,
    recovery_cost,
    scenario_cost,
)
from repro.metrics import TextTable

PAPER_CELLS = [
    (LABORATORY, 1.0, 0.42, M3_MEDIUM_PILOT_LIGHT, 93.4),
    (LABORATORY, 6.0, 1.50, M3_MEDIUM_PILOT_LIGHT, 93.4),
    (HOSPITAL, 1.0, 20.3, M3_LARGE_PILOT_LIGHT, 291.5),
    (HOSPITAL, 6.0, 21.4, M3_LARGE_PILOT_LIGHT, 291.5),
]


def build_table2() -> TextTable:
    table = TextTable(
        ["configuration", "Ginja $/mo", "paper", "EC2 $/mo", "paper ",
         "savings"],
        title="Table 2 — DR cost: Ginja vs EC2 Pilot Light (AWS, May 2017)",
    )
    for scenario, syncs, paper_ginja, vm, paper_vm in PAPER_CELLS:
        ginja = scenario_cost(scenario, syncs).total
        table.add(
            f"{scenario.name} ({syncs:.0f} sync/min)",
            ginja, paper_ginja, vm.monthly_cost, paper_vm,
            f"{vm.monthly_cost / ginja:.0f}x",
        )
    return table


def test_table2_cells(benchmark, print_report):
    table = benchmark(build_table2)

    recovery = TextTable(
        ["scenario", "recovery $ (WAN)", "paper", "recovery $ (same region)"],
        title="§7.3 — cost of recovery",
    )
    recovery.add("Laboratory", recovery_cost(LABORATORY), 1.125,
                 recovery_cost(LABORATORY, same_region=True))
    recovery.add("Hospital", recovery_cost(HOSPITAL), 112.5,
                 recovery_cost(HOSPITAL, same_region=True))
    print_report(table.render() + "\n\n" + recovery.render())

    for scenario, syncs, paper_ginja, vm, paper_vm in PAPER_CELLS:
        ours = scenario_cost(scenario, syncs).total
        assert abs(ours - paper_ginja) / paper_ginja < 0.05
        assert abs(vm.monthly_cost - paper_vm) / paper_vm < 0.01
    # §7.2's headline factors.
    assert 200 < M3_MEDIUM_PILOT_LIGHT.monthly_cost / scenario_cost(
        LABORATORY, 1.0).total < 240
    assert 13 < M3_LARGE_PILOT_LIGHT.monthly_cost / scenario_cost(
        HOSPITAL, 1.0).total < 15
    # §7.3's recovery costs.
    assert abs(recovery_cost(HOSPITAL) - 112.5) < 2.0
    assert recovery_cost(HOSPITAL, same_region=True) == 0.0
