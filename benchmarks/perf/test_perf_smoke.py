"""Perf-harness smoke tests: tiny sizes, correctness only, no timing
assertions (those live in the CI perf-smoke job's band check)."""

from __future__ import annotations

import pytest

from benchmarks.perf.harness import (
    LegacyCodec,
    SCHEMA,
    bench_codec,
    bench_fleet,
    bench_merge,
    bench_pipeline,
    bench_placement_read,
    bench_recovery,
    bench_replay,
    legacy_encode_wal_payload,
    legacy_merge_chunks,
    run_suite,
)
from benchmarks.perf.run import check
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import _merge_chunks
from repro.core.data_model import decode_wal_payload, encode_wal_payload

PASSWORD = "bench-password"


class TestLegacyReplicasMatchShippedCode:
    """The baseline series is only honest if the legacy replicas are
    wire-compatible with the shipped implementations."""

    def test_codecs_interoperate_both_ways(self):
        legacy = LegacyCodec(compress=True, encrypt=True, password=PASSWORD)
        current = ObjectCodec(compress=True, encrypt=True, password=PASSWORD)
        payload = b"wal page bytes " * 100
        assert current.decode(legacy.encode(payload)) == payload
        assert legacy.decode(bytes(current.encode(payload))) == payload

    def test_payload_framings_are_identical(self):
        chunks = [(0, b"a" * 100), (512, b"b" * 37), (4096, b"")]
        assert bytes(encode_wal_payload(chunks)) == \
            legacy_encode_wal_payload(chunks)
        assert decode_wal_payload(legacy_encode_wal_payload(chunks)) == chunks

    def test_merges_agree(self):
        chunks = [(0, b"a" * 64), (64, b"b" * 64), (200, b"c" * 8),
                  (204, b"D" * 2)]
        assert _merge_chunks(chunks) == legacy_merge_chunks(chunks)


class TestBenchmarksRun:
    @pytest.mark.parametrize("optimized", [False, True])
    def test_pipeline_bench_completes(self, optimized):
        rate = bench_pipeline(optimized=optimized, updates=30, page_size=1024,
                              uploaders=2, encoders=2, batch=5)
        assert rate > 0

    @pytest.mark.parametrize("decode", [False, True])
    def test_codec_bench_completes(self, decode):
        for optimized in (False, True):
            rate = bench_codec(optimized=optimized, payload_bytes=32 * 1024,
                               rounds=2, decode=decode)
            assert rate > 0

    def test_merge_bench_completes(self):
        assert bench_merge(optimized=True, runs=20, run_bytes=256,
                           rounds=3) > 0

    def test_replay_bench_verifies_the_image(self):
        # bench_replay raises if the replayed image mismatches; a clean
        # return at both series is the assertion.
        for optimized in (False, True):
            assert bench_replay(optimized=optimized, objects=10,
                                object_bytes=2048) > 0

    def test_recovery_bench_verifies_the_restore(self):
        # bench_recovery raises if the restored files mismatch the seeded
        # workload, so a clean return at both series proves the parallel
        # engine restored byte-identically to the sequential baseline.
        for optimized in (False, True):
            assert bench_recovery(optimized=optimized, objects=8,
                                  object_bytes=1024, get_latency=0.0005,
                                  repeats=1) > 0

    @pytest.mark.parametrize("optimized", [False, True])
    def test_fleet_bench_completes(self, optimized):
        # bench_fleet raises if any tenant pipeline fails to drain, so a
        # clean return proves both pool shapes deliver every update.
        rate = bench_fleet(optimized=optimized, tenants=3,
                           updates_per_tenant=8, page_size=1024,
                           batch=4, repeats=1)
        assert rate > 0

    @pytest.mark.parametrize("optimized", [False, True])
    def test_placement_read_bench_verifies_bytes(self, optimized):
        # bench_placement_read byte-verifies every reassembled object
        # against the seeded payloads, so a clean return at both series
        # proves the cost-ranked path and the naive baseline agree.
        assert bench_placement_read(optimized=optimized, objects=6,
                                    object_bytes=2048, get_latency=0.0002,
                                    repeats=1) > 0

    def test_mirror1_passthrough_bench_completes(self):
        from benchmarks.perf.harness import _mirror1_store

        rate = bench_pipeline(optimized=True, updates=20, page_size=1024,
                              uploaders=2, encoders=2, batch=5,
                              cloud_factory=_mirror1_store)
        assert rate > 0

    def test_recovery_bench_is_floor_gated_across_machines(self):
        # The committed entry carries "parallel": True so the CI check
        # never two-sided-bands a latency timing from another machine.
        report = run_suite(scale=0.01)
        assert report["benchmarks"]["recovery_parallel_download"]["parallel"]


class TestReportSchema:
    def test_suite_produces_canonical_schema(self):
        report = run_suite(scale=0.01)
        assert report["schema"] == SCHEMA
        assert report["machine"]["cpus"] >= 1
        for entry in report["benchmarks"].values():
            assert set(entry) >= {"unit", "baseline", "optimized", "speedup"}
            assert entry["baseline"] > 0
            assert entry["optimized"] > 0

    def test_check_passes_against_itself(self):
        report = run_suite(scale=0.01)
        assert check(report, report, band=0.4) == []

    def test_check_flags_a_collapsed_speedup(self):
        report = run_suite(scale=0.01)
        import copy
        committed = copy.deepcopy(report)
        for entry in committed["benchmarks"].values():
            entry["speedup"] = entry["speedup"] * 10  # fictitious past glory
        failures = check(report, committed, band=0.4)
        assert failures

    def test_check_rejects_unknown_schema(self):
        report = run_suite(scale=0.01)
        assert check(report, {"schema": "other"}, band=0.4)
