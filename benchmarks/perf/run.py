"""CLI for the perf harness: write or check ``BENCH_pipeline.json``.

Write the canonical report (committed at the repo root)::

    PYTHONPATH=src python -m benchmarks.perf.run --out BENCH_pipeline.json

Check a fresh run against the committed report::

    PYTHONPATH=src python -m benchmarks.perf.run --check BENCH_pipeline.json

The check gates on each benchmark's **speedup ratio** (optimized over
baseline), not on absolute throughput: MB/s moves with runner hardware,
but the ratio between two series measured back-to-back on the same
machine is stable.  The default band is generous (±40%) because CI
runners are noisy; a real regression — the encode stage serializing, a
copy chain reappearing — moves the ratio far more than that.  A fresh
optimized series slower than its own baseline by more than the band
fails regardless of the committed numbers.

Benchmarks that declare ``floor_1cpu`` additionally gate the fresh
ratio as a hard floor whenever the fresh run's machine has exactly one
CPU and the run is at canonical scale — no band, no parallel-flag
exemption (scaled-down smoke runs are all startup overhead and are not
floor-gated).  The adaptive dispatch
controller exists to make submit→unlock a win (or a tie) everywhere, so
on one core the shipped pipeline losing to its baseline is a bug, not a
machine artifact.  ``--mode-log PATH`` writes the controllers'
mode-transition records (what promoted/demoted, when, and why) so a
surprising ratio can be debugged from the CI artifact alone.
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import (
    MODE_TRANSITIONS,
    SCHEMA,
    dump,
    remeasure,
    render,
    run_suite,
)


def check(report: dict, committed: dict, band: float) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures: list[str] = []
    if committed.get("schema") != SCHEMA:
        return [f"committed report has schema {committed.get('schema')!r}, "
                f"expected {SCHEMA!r}"]
    same_cpus = (
        report["machine"].get("cpus") == committed["machine"].get("cpus")
    )
    # The 1-CPU floor is a claim about the canonical workload; a scaled-
    # down smoke run is all startup overhead and proves nothing.
    single_core = (
        report["machine"].get("cpus") == 1
        and report.get("scale", 1.0) >= 1.0
    )
    for name, entry in committed["benchmarks"].items():
        fresh = report["benchmarks"].get(name)
        if fresh is None:
            failures.append(f"{name}: missing from the fresh run")
            continue
        want, got = entry["speedup"], fresh["speedup"]
        floor = entry.get("floor_1cpu")
        if single_core and floor is not None and got < floor:
            # The adaptive-dispatch guarantee: on one CPU the shipped
            # series must not lose, full stop — the parallel flag's
            # cross-machine leniency does not apply.
            failures.append(
                f"{name}: speedup {got:.2f}x below the {floor:.2f}x "
                "single-core floor (adaptive dispatch must keep this a "
                "win on 1 CPU)"
            )
        if entry.get("parallel") and not same_cpus:
            # The parallel-pipeline ratio scales with core count; against
            # a report from a different machine only the floor applies —
            # more cores must never make the optimized series *slower*.
            if got < want * (1 - band):
                failures.append(
                    f"{name}: speedup {got:.2f}x below the committed "
                    f"{want:.2f}x floor (band {band:.0%}; CPU counts differ: "
                    f"{report['machine'].get('cpus')} vs "
                    f"{committed['machine'].get('cpus')})"
                )
        else:
            low, high = want * (1 - band), want * (1 + band)
            if not low <= got <= high:
                failures.append(
                    f"{name}: speedup {got:.2f}x outside "
                    f"[{low:.2f}x, {high:.2f}x] "
                    f"(committed {want:.2f}x +/- {band:.0%})"
                )
        if got < 1 - band:
            failures.append(
                f"{name}: optimized series is {got:.2f}x of baseline — "
                "slower than the code it replaced"
            )
    return failures


def confirm_outliers(report: dict, committed: dict, band: float) -> list[str]:
    """Re-measure gate violations in isolation before failing the run.

    Mid-suite readings on a shared host can drift outside their gates
    purely from throttling or stolen cycles (the suite pegs the CPU for
    minutes before the later pairs run) — single-core floors squeezed a
    few percent below 1.0x, pure-CPU ratios halved by a frequency dip.
    An isolated re-run of just the violating pairs settles it: a genuine
    regression re-measures out of band again and still fails; a host
    artifact recovers.  Only at canonical scale — a scaled-down smoke
    run is all startup overhead and not worth confirming.  Re-measured
    series replace their entries in ``report`` in place; returns the
    final failure list.
    """
    failures = check(report, committed, band)
    if not failures or report.get("scale", 1.0) < 1.0:
        return failures
    names = {msg.split(":", 1)[0] for msg in failures if ":" in msg}
    confirmed = False
    for name in sorted(names & set(report["benchmarks"])):
        series = remeasure(name)
        if series is None:
            continue
        fresh = report["benchmarks"][name]
        print(
            f"  {name}: {fresh['speedup']:.2f}x violated its gate "
            f"mid-suite; isolated re-measure {series['speedup']:.2f}x"
        )
        fresh.update(series)
        confirmed = True
    return check(report, committed, band) if confirmed else failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the canonical report here")
    parser.add_argument("--check", help="compare a fresh run against this report")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = canonical sizes)")
    parser.add_argument("--band", type=float, default=0.4,
                        help="allowed relative deviation of each speedup ratio")
    parser.add_argument("--mode-log",
                        help="write the dispatch controllers' mode-transition "
                             "log here (the perf-smoke CI artifact)")
    args = parser.parse_args(argv)
    if not args.out and not args.check:
        parser.error("need --out and/or --check")

    report = run_suite(scale=args.scale)
    print(render(report))

    if args.out:
        dump(report, args.out)
        print(f"wrote {args.out}")

    if args.mode_log:
        with open(args.mode_log, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "machine": report["machine"],
                    "scale": report["scale"],
                    "transitions": MODE_TRANSITIONS,
                },
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")
        switches = sum(len(v) for v in MODE_TRANSITIONS.values())
        print(f"wrote {args.mode_log} ({switches} mode transitions)")

    if args.check:
        with open(args.check, encoding="utf-8") as fh:
            committed = json.load(fh)
        failures = confirm_outliers(report, committed, args.band)
        if failures:
            print("PERF CHECK FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"perf check passed (band +/-{args.band:.0%} on speedup ratios)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
