"""Perf-regression microbenchmarks for the commit pipeline's hot path.

Run the full harness and write the canonical report::

    PYTHONPATH=src python -m benchmarks.perf.run --out BENCH_pipeline.json

Check a fresh run against the committed report (CI's perf-smoke job)::

    PYTHONPATH=src python -m benchmarks.perf.run --check BENCH_pipeline.json

Correctness-level smoke tests (tiny sizes, no timing assertions)::

    PYTHONPATH=src python -m pytest benchmarks/perf
"""
