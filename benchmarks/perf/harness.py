"""Microbenchmarks: pipeline throughput, codec bandwidth, merge/replay.

Every benchmark runs twice — a **baseline** series that reproduces the
pre-optimization implementation (serial inline encode on the Aggregator
thread, the legacy copy-chain codec and list-join payload framing) and
an **optimized** series on the shipped code (parallel encode stage,
zero-copy assembly).  Committing both series makes the report
self-describing: the regression signal is the per-benchmark ratio, which
is far more stable across machines than absolute MB/s.

Notes on machines: the parallel-encode win only exists with >1 CPU
(zlib/AES/HMAC release the GIL, but one core can still only run one of
them at a time).  Adaptive dispatch turns the single-core case from an
excuse into a guarantee: the controller measures that the pool is not
winning and keeps (or puts) encoding inline, so the submit→unlock
benchmarks carry a ``floor_1cpu`` of 1.0 — on a 1-CPU runner the
shipped pipeline must never lose to the serial baseline, no
parallel-flag exemption.  The report records the CPU count so readers
(and the CI band check) can interpret the multi-core ratios.

Every adaptive series appends its controller's transition records to
:data:`MODE_TRANSITIONS` (keyed by benchmark tag); ``run.py
--mode-log`` persists it as the CI artifact.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import platform
import random
import statistics
import time
import zlib

from repro.cloud.latency import LatencyModel
from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.cloud.transport import build_transport
from repro.common.serialize import pack_bytes, pack_u32, pack_u64
from repro.core.bootstrap import recover_files
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec, _MAC_BYTES
from repro.core.commit_pipeline import CommitPipeline, _merge_chunks
from repro.core.config import GinjaConfig
from repro.core.data_model import (
    DBObjectMeta,
    DUMP,
    WALObjectMeta,
    decode_wal_payload,
    encode_dump_payload,
    encode_wal_payload,
)
from repro.storage.memory import MemoryFileSystem

SCHEMA = "ginja-perf-v1"
PASSWORD = "bench-password"

#: Dispatch-controller transition logs collected during the last suite
#: run, keyed by benchmark tag — the perf-smoke job uploads this so a
#: surprising ratio can be read against what the controller actually
#: did (did it promote? demote? flap?).
MODE_TRANSITIONS: dict[str, list[dict]] = {}


def _log_transitions(tag: str | None, pipe: CommitPipeline) -> None:
    if tag is not None and pipe.dispatch.transitions:
        MODE_TRANSITIONS.setdefault(tag, []).extend(
            dict(record, lane=record["lane"] or "default")
            for record in pipe.dispatch.transitions
        )


# ---------------------------------------------------------------------------
# Baseline replicas (the pre-optimization implementations, kept verbatim
# so the baseline series measures the CPU profile this PR replaced).


class LegacyCodec(ObjectCodec):
    """The old copy-chain encoder/decoder: ``head + body`` then
    ``signed + mac`` concatenations on encode, ``bytes`` slices on
    decode."""

    def encode(self, payload) -> bytes:  # type: ignore[override]
        flags = 0
        body = bytes(payload)
        if self.compressing:
            body = zlib.compress(body, 1)
            flags |= 0x01
        iv = b""
        if self.encrypting:
            iv = os.urandom(16)
            body = _legacy_aes(self._cipher_key, iv, body)
            flags |= 0x02
        head = bytes([flags]) + iv
        signed = head + body
        mac = hmac.new(self._mac_key, signed, hashlib.sha1).digest()
        return signed + mac

    def decode(self, blob) -> bytes:  # type: ignore[override]
        blob = bytes(blob)
        mac = blob[-_MAC_BYTES:]
        signed = blob[:-_MAC_BYTES]
        expected = hmac.new(self._mac_key, signed, hashlib.sha1).digest()
        if not hmac.compare_digest(mac, expected):
            raise ValueError("MAC mismatch")
        flags = signed[0]
        offset = 1
        iv = b""
        if flags & 0x02:
            iv = signed[offset:offset + 16]
            offset += 16
        body = signed[offset:]
        if flags & 0x02:
            body = _legacy_aes(self._cipher_key, iv, body)
        if flags & 0x01:
            body = zlib.decompress(body)
        return body


def _legacy_aes(key: bytes, iv: bytes, data: bytes) -> bytes:
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

    cipher = Cipher(algorithms.AES(key), modes.CTR(iv))
    enc = cipher.encryptor()
    return enc.update(data) + enc.finalize()


def legacy_encode_wal_payload(chunks) -> bytes:
    """The old list-join framing (one copy per field, one final join)."""
    out = [pack_u32(len(chunks))]
    for offset, data in chunks:
        out.append(pack_u64(offset))
        out.append(pack_bytes(bytes(data)))
    return b"".join(out)


def legacy_merge_chunks(chunks):
    """The old merge: every run widened into a bytearray up front."""
    merged = []
    for offset, data in chunks:
        if merged:
            last_offset, last_data = merged[-1]
            last_end = last_offset + len(last_data)
            if offset <= last_end:
                start = offset - last_offset
                end = start + len(data)
                if end >= len(last_data):
                    del last_data[start:]
                    last_data.extend(data)
                else:
                    last_data[start:end] = data
                continue
        merged.append((offset, bytearray(data)))
    return [(offset, bytes(data)) for offset, data in merged]


# ---------------------------------------------------------------------------
# Workload material


def page_stream(seed: int, pages: int, page_size: int):
    """Deterministic, mildly compressible page writes at distinct offsets."""
    rng = random.Random(seed)
    template = bytes(rng.randrange(256) for _ in range(page_size // 4))
    out = []
    for i in range(pages):
        filler = bytes([rng.randrange(256)]) * (page_size - len(template) - 8)
        out.append((i * page_size, b"%08d" % i + template + filler))
    return out


# ---------------------------------------------------------------------------
# Benchmarks.  Each returns updates/s, MB/s or ops/s for one series —
# the best of ``repeats`` passes, which filters scheduler noise far
# better than averaging (the best pass is the least-perturbed one).


def _best(passes) -> float:
    return max(passes)


def bench_pipeline(*, optimized: bool, updates: int, page_size: int,
                   uploaders: int = 5, encoders: int = 4,
                   batch: int = 50, seed: int = 1234,
                   repeats: int = 3, cloud_factory=None,
                   dispatch: str | None = None,
                   tag: str | None = None) -> float:
    """Submit→unlock throughput with compress+encrypt on a zero-latency
    cloud — the CPU-bound shape where the encode stage matters.

    ``optimized=False`` replays the pre-PR pipeline: inline serial
    encode on the Aggregator with the legacy copy-chain codec.
    ``dispatch`` overrides the encode dispatch policy (default: the
    shipped ``"adaptive"`` for the optimized series, pinned
    ``"inline"`` for the baseline, matching what each series models).
    ``tag`` collects the controller's transition log under that key in
    :data:`MODE_TRANSITIONS`.  ``cloud_factory`` swaps the store the
    pipeline uploads into (the mirror-1 passthrough gate uses a
    single-provider PlacementStore); the factory's product is closed
    after each pass when it can be.
    """
    if dispatch is None:
        dispatch = "adaptive" if optimized else "inline"
    config = GinjaConfig(
        batch=batch, safety=updates + batch, batch_timeout=0.005,
        safety_timeout=120.0, uploaders=uploaders, encoders=encoders,
        encode_dispatch=dispatch, compress=True, encrypt=True,
        password=PASSWORD,
    )
    codec_cls = ObjectCodec if optimized else LegacyCodec
    codec = codec_cls(compress=True, encrypt=True, password=PASSWORD)
    writes = page_stream(seed, updates, page_size)
    rates = []
    for _ in range(repeats):
        if cloud_factory is not None:
            cloud = cloud_factory()
        else:
            cloud = SimulatedCloud(
                backend=InMemoryObjectStore(), time_scale=0.0
            )
        pipe = CommitPipeline(
            config, build_transport(cloud, config), codec, CloudView()
        )
        pipe.start()
        try:
            start = time.perf_counter()
            for offset, data in writes:
                pipe.submit("seg", offset, data)
            if not pipe.drain(timeout=600.0):
                raise RuntimeError("pipeline failed to drain")
            elapsed = time.perf_counter() - start
        finally:
            pipe.stop(drain_timeout=30.0)
            _log_transitions(tag, pipe)
            if cloud_factory is not None and hasattr(cloud, "close"):
                cloud.close()
        rates.append(updates / elapsed)
    return _best(rates)


def _mirror1_store():
    """A single-provider mirror-1 PlacementStore on a zero-latency
    stack — the configuration that must be a pure passthrough."""
    from repro.cloud.latency import LOCAL_LATENCY
    from repro.cloud.pricing import S3_STANDARD_2017
    from repro.placement import ProviderSpec, build_placement

    spec = ProviderSpec(
        name="s3", prices=S3_STANDARD_2017, latency=LOCAL_LATENCY,
        time_scale=0.0,
    )
    return build_placement(1, "mirror-1", specs=[spec])


def bench_placement_read(*, optimized: bool, objects: int, object_bytes: int,
                         get_latency: float = 0.002, seed: int = 37,
                         repeats: int = 2) -> float:
    """Stripe read-path throughput in objects/s against 2 ms-GET
    providers: the placement store's parallel fragment fetch +
    reassembly vs a sequential one-fragment-at-a-time reader.

    Both series do the same logical work per object — locate the
    fragment set with narrow per-provider LISTs, GET ``k`` fragments,
    decode and reassemble — and byte-verify the result, so the ratio
    isolates the latency overlap of the parallel read path (which, like
    the recovery engine's, survives a single-core runner: the GIL is
    released while a GET sleeps out its modeled latency).
    """
    from repro.placement import build_placement, default_provider_specs
    from repro.placement.fragments import (
        decode_fragment,
        fragment_prefix,
        parse_fragment_key,
        reassemble,
    )

    latency = LatencyModel(
        get_base=get_latency, list_base=get_latency, jitter_sigma=0.0,
    )
    rng = random.Random(seed)
    payloads = {
        f"DB/{i:05d}": bytes(rng.randrange(256) for _ in range(object_bytes))
        for i in range(objects)
    }
    specs = default_provider_specs(3, seed=seed, latency=latency)
    store = build_placement(3, "stripe-2-3", specs=specs)
    try:
        for key, data in payloads.items():
            store.put(key, data)
        rates = []
        for _ in range(repeats):
            start = time.perf_counter()
            for key, data in payloads.items():
                if optimized:
                    got = store.get(key)
                else:
                    # Sequential reader: one LIST per provider, then one
                    # GET at a time until k fragments are in hand.
                    frags = {}
                    for provider in store.providers:
                        for info in provider.store.list(fragment_prefix(key)):
                            frag = parse_fragment_key(info.key)
                            if frag is not None:
                                frags.setdefault(frag.index, (provider, frag))
                    shape = next(iter(frags.values()))[1]
                    bodies = {}
                    for index, (provider, frag) in sorted(frags.items()):
                        if len(bodies) == shape.k:
                            break
                        blob = provider.store.get(frag.key)
                        bodies[index] = decode_fragment(frag, blob)
                    got = reassemble(
                        bodies, k=shape.k, n=shape.n, size=shape.size
                    )
                if got != data:
                    raise RuntimeError(f"read of {key} corrupt")
            elapsed = time.perf_counter() - start
            rates.append(objects / elapsed)
    finally:
        store.close()
    return _best(rates)


def bench_codec(*, optimized: bool, payload_bytes: int, rounds: int,
                seed: int = 99, decode: bool = False,
                repeats: int = 3) -> float:
    """Codec bandwidth in MB/s (compress+encrypt+MAC, one big payload)."""
    codec_cls = ObjectCodec if optimized else LegacyCodec
    codec = codec_cls(compress=True, encrypt=True, password=PASSWORD)
    rng = random.Random(seed)
    quarter = bytes(rng.randrange(256) for _ in range(payload_bytes // 4))
    payload = (quarter + b"\x00" * (payload_bytes // 4)) * 2
    payload = payload[:payload_bytes]
    blob = codec.encode(payload)  # warm-up (and the decode input)
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            if decode:
                codec.decode(blob)
            else:
                codec.encode(payload)
        elapsed = time.perf_counter() - start
        rates.append(payload_bytes * rounds / elapsed / 1e6)
    return _best(rates)


def bench_codec_pair(*, payload_bytes: int, rounds: int, seed: int = 99,
                     decode: bool = False, repeats: int = 5) -> dict:
    """Both codec series in one interleaved measurement.

    A codec round over 4 MiB is ~10 ms of pure CPU, so measuring the
    two series back-to-back lets a host frequency ramp land entirely on
    one of them and swing the ratio by 2x.  Interleaving makes adjacent
    samples share the frequency state, and the **median of per-repeat
    ratios** is robust to the ramps a per-series best-of pairs
    asymmetrically.  The reported optimized rate is derived from the
    median ratio (the gate is on the ratio, not the absolute rate).
    """
    codecs = {
        "baseline": LegacyCodec(compress=True, encrypt=True,
                                password=PASSWORD),
        "optimized": ObjectCodec(compress=True, encrypt=True,
                                 password=PASSWORD),
    }
    rng = random.Random(seed)
    quarter = bytes(rng.randrange(256) for _ in range(payload_bytes // 4))
    payload = (quarter + b"\x00" * (payload_bytes // 4)) * 2
    payload = payload[:payload_bytes]
    blobs = {s: c.encode(payload) for s, c in codecs.items()}  # warm-up
    ratios = []
    base_rates = []
    for _ in range(repeats):
        elapsed = {}
        for series, codec in codecs.items():
            start = time.perf_counter()
            for _ in range(rounds):
                if decode:
                    codec.decode(blobs[series])
                else:
                    codec.encode(payload)
            elapsed[series] = time.perf_counter() - start
        base_rates.append(payload_bytes * rounds / elapsed["baseline"] / 1e6)
        ratios.append(elapsed["baseline"] / elapsed["optimized"])
    baseline = statistics.median(base_rates)
    return {
        "baseline": baseline,
        "optimized": baseline * statistics.median(ratios),
    }


def bench_merge(*, optimized: bool, runs: int, run_bytes: int,
                rounds: int, seed: int = 7) -> float:
    """Aggregator merge throughput in ops (merge calls) per second over
    mostly non-overlapping run lists — the shape the zero-copy pass-through
    targets."""
    rng = random.Random(seed)
    chunks = []
    position = 0
    for _ in range(runs):
        data = bytes([rng.randrange(256)]) * run_bytes
        chunks.append((position, data))
        position += run_bytes + (0 if rng.random() < 0.1 else 64)
    merge = _merge_chunks if optimized else legacy_merge_chunks
    merge(chunks)  # warm-up
    rates = []
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(rounds):
            merge(chunks)
        elapsed = time.perf_counter() - start
        rates.append(rounds / elapsed)
    return _best(rates)


def bench_replay(*, optimized: bool, objects: int, object_bytes: int,
                 seed: int = 17) -> float:
    """Recovery replay bandwidth in MB/s: decode WAL objects from an
    in-memory bucket and apply their chunks to a file image."""
    codec_cls = ObjectCodec if optimized else LegacyCodec
    codec = codec_cls(compress=True, encrypt=True, password=PASSWORD)
    frame = encode_wal_payload if optimized else legacy_encode_wal_payload
    store = InMemoryObjectStore()
    writes = page_stream(seed, objects, object_bytes)
    for ts, (offset, data) in enumerate(writes):
        meta = WALObjectMeta(ts=ts, filename="seg", offset=offset)
        store.put(meta.key, codec.encode(frame([(offset, data)])))
    total = objects * object_bytes
    rates = []
    for _ in range(3):
        image = bytearray(total)
        start = time.perf_counter()
        for info in store.list("WAL/"):
            payload = codec.decode(store.get(info.key))
            for offset, data in decode_wal_payload(payload):
                image[offset:offset + len(data)] = data
        elapsed = time.perf_counter() - start
        for offset, data in writes:
            if bytes(image[offset:offset + len(data)]) != data:
                raise RuntimeError("replayed image does not match the stream")
        rates.append(total / elapsed / 1e6)
    return _best(rates)


def _recovery_bucket(codec, objects, object_bytes, seed):
    """A bucket holding one dump plus a consecutive WAL chain, and the
    material to verify a byte-identical restore against."""
    store = InMemoryObjectStore()
    rng = random.Random(seed)
    base = bytes(rng.randrange(256) for _ in range(object_bytes)) * 4
    store.put(
        DBObjectMeta(ts=0, type=DUMP, size=len(base)).key,
        codec.encode(encode_dump_payload([("base/data", base)])),
    )
    writes = page_stream(seed + 1, objects, object_bytes)
    for ts, (offset, data) in enumerate(writes, start=1):
        meta = WALObjectMeta(ts=ts, filename="seg", offset=offset)
        store.put(meta.key, codec.encode(encode_wal_payload([(offset, data)])))
    return store, writes, base


def bench_recovery(*, optimized: bool, objects: int, object_bytes: int,
                   downloaders: int = 6, get_latency: float = 0.002,
                   seed: int = 23, repeats: int = 2) -> float:
    """Recovery download→decode→apply throughput in objects/s against a
    latency-modeled store — Figure 7's phase.

    ``optimized=False`` restores sequentially (one blocking GET at a
    time, the pre-engine behaviour); ``optimized=True`` runs the
    recovery engine's ``downloaders``-wide prefetch pool.  Unlike the
    encode pipeline's, this speedup survives a single-core runner: the
    workers overlap *latency* (the GIL is released while a GET sleeps
    out its modeled latency), not CPU.  Each pass verifies the restored
    image byte-for-byte, so baseline and optimized provably produce the
    same files.
    """
    codec = ObjectCodec(compress=True, encrypt=True, password=PASSWORD)
    backend, writes, base = _recovery_bucket(
        codec, objects, object_bytes, seed
    )
    expected_seg = b"".join(data for _offset, data in writes)
    config = GinjaConfig(
        downloaders=downloaders if optimized else 1,
        prefetch_window=2 * downloaders,
        compress=True, encrypt=True, password=PASSWORD,
    )
    latency = LatencyModel(get_base=get_latency, list_base=get_latency)
    rates = []
    for _ in range(repeats):
        sim = SimulatedCloud(backend=backend, latency=latency, time_scale=1.0)
        fs = MemoryFileSystem()
        start = time.perf_counter()
        report = recover_files(sim, codec, fs, config=config)
        elapsed = time.perf_counter() - start
        if fs.read_all("seg") != expected_seg:
            raise RuntimeError("restored WAL image does not match the stream")
        if fs.read_all("base/data") != base:
            raise RuntimeError("restored dump does not match the source")
        if report.wal_objects_applied != objects:
            raise RuntimeError("recovery applied the wrong object count")
        rates.append(objects / elapsed)
    return _best(rates)


def bench_fleet(*, optimized: bool, tenants: int, updates_per_tenant: int,
                page_size: int = 4096, hot_factor: int = 4,
                batch: int = 20, seed: int = 31, repeats: int = 3,
                dispatch: str | None = None,
                tag: str | None = None) -> float:
    """Fleet submit→unlock throughput: N tenant pipelines under a skewed
    load, shared encode pool vs N private pools.

    Both series run the *same total encoder thread count* (``tenants``
    workers), so the ratio isolates the pooling structure rather than
    raw parallelism: ``optimized=True`` is one shared ``tenants``-wide
    EncodeStage with per-tenant fair-share lanes, ``optimized=False``
    gives each tenant a private single-worker stage.  The load is
    deliberately skewed (a hot third of the fleet submits
    ``hot_factor``x the updates) — private pools strand the cold
    tenants' workers while the hot tenants' single worker becomes the
    makespan, which is exactly the idle capacity a shared pool
    reclaims.

    ``dispatch`` defaults to the shipped ``"adaptive"`` for the shared
    series (on one core every lane self-demotes to inline, which is the
    single-core fix under test) and to pinned ``"pool"`` for the
    private-pool baseline, preserving the pre-controller behaviour that
    series models.

    The upload reactor follows the same split as the encode pool: the
    shared series runs one fleet-wide reactor (one loop thread, exactly
    what ``FleetManager`` deploys), the private series gives every
    pipeline its own — ``tenants`` loop threads, the stand-alone shape.
    """
    if dispatch is None:
        dispatch = "adaptive" if optimized else "pool"
    weights = [
        hot_factor if i < max(1, tenants // 3) else 1 for i in range(tenants)
    ]
    streams = [
        page_stream(seed + i, updates_per_tenant * weight, page_size)
        for i, weight in enumerate(weights)
    ]
    total = sum(len(stream) for stream in streams)
    rates = []
    for _ in range(repeats):
        shared = None
        reactor = None
        pipes = []
        if optimized:
            from repro.cloud.reactor import UploadReactor
            from repro.core.encode_stage import EncodeStage

            shared = EncodeStage(tenants, name="bench-fleet-encoder")
            shared.start()
            reactor = UploadReactor(
                inflight_window=2 * tenants, name="bench-fleet-reactor"
            )
            reactor.start()
        try:
            for i in range(tenants):
                config = GinjaConfig(
                    batch=batch, safety=len(streams[i]) + batch,
                    batch_timeout=0.005, safety_timeout=120.0,
                    uploaders=2, encoders=1, encode_dispatch=dispatch,
                    compress=True, encrypt=True, password=PASSWORD,
                )
                cloud = SimulatedCloud(
                    backend=InMemoryObjectStore(), time_scale=0.0
                )
                codec = ObjectCodec(
                    compress=True, encrypt=True, password=PASSWORD
                )
                pipe = CommitPipeline(
                    config, build_transport(cloud, config), codec,
                    CloudView(), encode_stage=shared, lane=f"tenant-{i}",
                    reactor=reactor,
                )
                pipe.start()
                pipes.append(pipe)
            start = time.perf_counter()
            # Round-robin submission interleaves tenants the way a fleet
            # of concurrent databases would.
            cursors = [0] * tenants
            remaining = total
            while remaining:
                for i, stream in enumerate(streams):
                    if cursors[i] < len(stream):
                        offset, data = stream[cursors[i]]
                        pipes[i].submit("seg", offset, data)
                        cursors[i] += 1
                        remaining -= 1
            for pipe in pipes:
                if not pipe.drain(timeout=600.0):
                    raise RuntimeError("fleet pipeline failed to drain")
            elapsed = time.perf_counter() - start
        finally:
            for pipe in pipes:
                pipe.stop(drain_timeout=30.0)
                _log_transitions(tag, pipe)
            if shared is not None:
                shared.stop()
            if reactor is not None and reactor.alive:
                reactor.stop()
        rates.append(total / elapsed)
    return _best(rates)


def bench_reactor(*, optimized: bool, tenants: int, puts_per_tenant: int,
                  blob_bytes: int = 8192, window: int = 512,
                  put_ms: float = 5.0, repeats: int = 3) -> float:
    """Upload-stage throughput: thread-per-upload vs the shared reactor
    at an equal global in-flight window.

    Both series push the same pre-encoded blobs (round-robin across
    ``tenants`` lanes, the hot third submitting 4x) through the same
    5 ms-PUT simulated cloud with at most ``window`` PUTs in flight.
    The baseline replicates the pre-reactor cost model — each in-flight
    PUT owns a dedicated OS thread for its lifetime (spawned on demand,
    gated by a ``window``-permit semaphore, joined to complete) — while
    the optimized series multiplexes every PUT onto the one reactor
    event loop as asyncio tasks, backoff-free timers and all.  The
    series diverge with the window, not at a point: threads plateau
    near window 64 (spawn cost and scheduler churn eat the wider
    window), while loop timers keep scaling — batching more expiries
    per loop iteration actually *amortizes* the reactor's overhead as
    concurrency grows.  EXPERIMENTS.md tabulates the sweep; the gated
    entry pins the wide-window point where the structures differ most.
    """
    import threading

    from repro.cloud.reactor import UploadReactor

    latency = LatencyModel(put_base=put_ms / 1000.0)
    weights = [4 if i < max(1, tenants // 3) else 1 for i in range(tenants)]
    jobs: list[tuple[int, str, bytes]] = []
    rng = random.Random(97)
    blobs = [rng.randbytes(blob_bytes) for _ in range(8)]
    cursor = 0
    remaining = [puts_per_tenant * weight for weight in weights]
    while any(remaining):
        for i in range(tenants):
            if remaining[i]:
                jobs.append((i, f"tenants/t{i}/WAL/{remaining[i]}",
                             blobs[cursor % len(blobs)]))
                cursor += 1
                remaining[i] -= 1
    rates = []
    for _ in range(repeats):
        # The lean lower half of the transport stack (latency over the
        # backend): both series pay identical per-PUT work, so the
        # ratio isolates threads-vs-loop-timers, not metering overhead.
        cloud = build_transport(
            InMemoryObjectStore(), latency=latency,
            metered=False, tracing=False, time_scale=1.0,
        )
        if optimized:
            reactor = UploadReactor(inflight_window=window, io_threads=4)
            reactor.start()
            lane_window = max(1, window // tenants)
            try:
                for i in range(tenants):
                    reactor.attach(f"t{i}", window=lane_window)
                start = time.perf_counter()
                handles = [
                    reactor.submit(cloud, key, blob, tenant=f"t{i}")
                    for i, key, blob in jobs
                ]
                for handle in handles:
                    handle.wait(timeout=600.0)
                    if not handle.ok:
                        raise RuntimeError(f"upload failed: {handle.error}")
                elapsed = time.perf_counter() - start
            finally:
                reactor.stop()
        else:
            gate = threading.Semaphore(window)
            failures: list[BaseException] = []

            def upload(key: str, blob: bytes) -> None:
                try:
                    cloud.put(key, blob)
                except BaseException as exc:  # noqa: BLE001 - recorded
                    failures.append(exc)
                finally:
                    gate.release()

            start = time.perf_counter()
            threads = []
            for _, key, blob in jobs:
                gate.acquire()
                thread = threading.Thread(
                    target=upload, args=(key, blob), daemon=True
                )
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(timeout=600.0)
            elapsed = time.perf_counter() - start
            if failures:
                raise RuntimeError(f"upload failed: {failures[0]}")
        rates.append(len(jobs) / elapsed)
    return _best(rates)


# ---------------------------------------------------------------------------
# The full suite


def run_suite(scale: float = 1.0) -> dict:
    """Run every benchmark at ``scale`` (1.0 = the committed report's
    sizes; the smoke test uses a tiny fraction) and return the canonical
    report structure."""

    def n(value: int, floor: int = 1) -> int:
        return max(floor, int(value * scale))

    MODE_TRANSITIONS.clear()
    results = {}

    pipeline = {
        series: bench_pipeline(
            optimized=(series == "optimized"),
            updates=n(2000, 20), page_size=8192,
            tag="pipeline_submit_unlock"
            if series == "optimized" else None,
        )
        for series in ("baseline", "optimized")
    }
    results["pipeline_submit_unlock"] = {
        "unit": "updates/s",
        "config": "compress+encrypt, uploaders=5, encoders=4, B=50, "
                  "8 KiB pages, adaptive dispatch vs serial inline legacy",
        # The ratio scales with core count (the baseline is serial inline
        # encode); the band check only compares it against a report from
        # a machine with the same CPU count.  On one CPU the adaptive
        # controller must keep encoding inline, so the shipped pipeline
        # can only win (zero-copy codec) — a hard floor, no parallel
        # exemption.
        "parallel": True,
        "floor_1cpu": 1.0,
        **pipeline,
    }

    for name, decode in (("codec_encode", False), ("codec_decode", True)):
        results[name] = {
            "unit": "MB/s",
            "config": "compress+encrypt+MAC, 4 MiB payload, "
                      "interleaved series",
            **bench_codec_pair(
                payload_bytes=n(4 * 1024 * 1024, 64 * 1024),
                rounds=n(8, 2), decode=decode, repeats=5,
            ),
        }

    merge = {
        s: bench_merge(
            optimized=(s == "optimized"),
            runs=n(400, 16), run_bytes=4096, rounds=n(200, 5),
        )
        for s in ("baseline", "optimized")
    }
    results["merge_chunks"] = {
        "unit": "ops/s",
        "config": "400 runs x 4 KiB, ~90% non-overlapping",
        **merge,
    }

    replay = {
        s: bench_replay(
            optimized=(s == "optimized"),
            objects=n(200, 8), object_bytes=16384,
        )
        for s in ("baseline", "optimized")
    }
    results["recovery_replay"] = {
        "unit": "MB/s",
        "config": "16 KiB WAL objects, compress+encrypt",
        **replay,
    }

    fleet = {
        s: bench_fleet(
            optimized=(s == "optimized"),
            tenants=6, updates_per_tenant=n(250, 8),
            tag="fleet_submit_unlock" if s == "optimized" else None,
            # Best-of-5 for the same reason as the codec pair: the two
            # series sit within a few percent on one core, so the gated
            # floor needs the peak, not a noisy 3-sample draw.
            repeats=5,
        )
        for s in ("baseline", "optimized")
    }
    results["fleet_submit_unlock"] = {
        "unit": "updates/s",
        "config": "6 tenants (hot third at 4x), shared pool + adaptive "
                  "dispatch vs 6 private 1-worker pools, compress+encrypt, "
                  "4 KiB pages",
        # Equal thread counts in both series, but the work-stealing win
        # depends on genuinely overlapping encoder work — floor-only
        # across machines with different core counts.  On one CPU every
        # lane self-demotes to inline, which must beat the private-pool
        # hand-off overhead: a hard floor, no parallel exemption (this
        # was the 0.96x regression this controller exists to fix).
        "parallel": True,
        "floor_1cpu": 1.0,
        **fleet,
    }

    adaptive = {
        # Both series run the shipped pipeline and codec; the only
        # difference is the dispatch policy — pinned pool vs adaptive.
        # Wherever the pool genuinely wins the controller promotes into
        # it, so adaptive must never lose to pinned pool by more than
        # measurement noise, and on one CPU it must win outright.
        "baseline": bench_pipeline(
            optimized=True, updates=n(2000, 20), page_size=8192,
            dispatch="pool",
        ),
        "optimized": bench_pipeline(
            optimized=True, updates=n(2000, 20), page_size=8192,
            dispatch="adaptive", tag="adaptive_submit_unlock",
        ),
    }
    results["adaptive_submit_unlock"] = {
        "unit": "updates/s",
        "config": "shipped pipeline, pinned pool dispatch vs adaptive "
                  "self-tuning; compress+encrypt, 8 KiB pages",
        "parallel": True,
        "floor_1cpu": 1.0,
        **adaptive,
    }

    reactor = {
        s: bench_reactor(
            optimized=(s == "optimized"),
            tenants=32, puts_per_tenant=n(48, 2), window=512,
        )
        for s in ("baseline", "optimized")
    }
    results["reactor_inflight"] = {
        "unit": "puts/s",
        "config": "32 tenants (hot third at 4x), 5 ms-PUT simulated "
                  "cloud, global window 512: thread-per-upload vs one "
                  "reactor event loop",
        # The thread series plateaus near window 64 while loop timers
        # keep scaling (see EXPERIMENTS.md for the sweep), so the wide-
        # window ratio holds across core counts — and on one CPU the
        # thread-per-upload spawn/switch tax bites hardest, which is
        # exactly the claim under test: the floor is the >=2x
        # submit->ack acceptance bar.
        "parallel": True,
        "floor_1cpu": 2.0,
        # Peak threads parked on upload duty, by construction: the
        # baseline needs one OS thread per in-flight PUT; the reactor
        # needs its event-loop thread plus a fixed 4-thread executor
        # (idle here — the simulated cloud is natively async).
        "threads_baseline": 512,
        "threads_optimized": 5,
        **reactor,
    }

    download = {
        s: bench_recovery(
            optimized=(s == "optimized"),
            objects=n(150, 12), object_bytes=8192,
        )
        for s in ("baseline", "optimized")
    }
    results["recovery_parallel_download"] = {
        "unit": "objects/s",
        "config": "8 KiB WAL objects, 2 ms GET latency, downloaders=6",
        # Latency-bound rather than CPU-bound, but timing real sleeps is
        # scheduler-sensitive — keep the cross-machine check floor-only.
        "parallel": True,
        **download,
    }

    placement_read = {
        s: bench_placement_read(
            optimized=(s == "optimized"),
            objects=n(120, 10), object_bytes=8192,
        )
        for s in ("baseline", "optimized")
    }
    results["placement_stripe_read"] = {
        "unit": "objects/s",
        "config": "stripe-2-3 over 3 providers, 8 KiB objects, "
                  "2 ms GET/LIST latency",
        # Latency-bound like the recovery download — floor-only across
        # machines.
        "parallel": True,
        **placement_read,
    }

    mirror1 = {
        # Both series run the *shipped* pipeline; the only difference is
        # the store underneath — a plain simulated cloud vs a
        # single-provider mirror-1 PlacementStore.  The speedup must pin
        # ~1.0x: the fast path adds zero copies and zero fan-out, so a
        # drifting ratio means the placement layer grew a cost on the
        # configuration everyone who doesn't use it still runs.
        "baseline": bench_pipeline(
            optimized=True, updates=n(2000, 20), page_size=8192,
        ),
        "optimized": bench_pipeline(
            optimized=True, updates=n(2000, 20), page_size=8192,
            cloud_factory=_mirror1_store,
        ),
    }
    results["placement_mirror1_passthrough"] = {
        "unit": "updates/s",
        "config": "shipped pipeline on plain cloud vs mirror-1 "
                  "PlacementStore; ratio must hold ~1.0x",
        **mirror1,
    }

    for entry in results.values():
        entry["speedup"] = (
            entry["optimized"] / entry["baseline"] if entry["baseline"] else 0.0
        )

    return {
        "schema": SCHEMA,
        "machine": {
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "scale": scale,
        "benchmarks": results,
    }


#: Canonical-scale re-runs of each benchmark pair, used by the check
#: CLI to confirm a gate violation (single-core floor or band) before
#: failing the run.  Mid-suite, a shared 1-CPU host can throttle or
#: steal cycles for minutes at a time, which squeezes the few-percent
#: margins below their gates even though an isolated re-measurement
#: lands back inside; a *real* regression (a copy chain back, a lane
#: serializing) re-measures low too, so the retry does not weaken any
#: gate.  Keep the parameters in lockstep with :func:`run_suite`'s
#: canonical (scale=1.0) sizes.
REMEASURE = {
    "pipeline_submit_unlock": lambda: {
        "baseline": bench_pipeline(
            optimized=False, updates=2000, page_size=8192,
        ),
        "optimized": bench_pipeline(
            optimized=True, updates=2000, page_size=8192,
        ),
    },
    "fleet_submit_unlock": lambda: {
        "baseline": bench_fleet(
            optimized=False, tenants=6, updates_per_tenant=250, repeats=5,
        ),
        "optimized": bench_fleet(
            optimized=True, tenants=6, updates_per_tenant=250, repeats=5,
        ),
    },
    "adaptive_submit_unlock": lambda: {
        "baseline": bench_pipeline(
            optimized=True, updates=2000, page_size=8192, dispatch="pool",
        ),
        "optimized": bench_pipeline(
            optimized=True, updates=2000, page_size=8192,
            dispatch="adaptive",
        ),
    },
    "reactor_inflight": lambda: {
        "baseline": bench_reactor(
            optimized=False, tenants=32, puts_per_tenant=48, window=512,
        ),
        "optimized": bench_reactor(
            optimized=True, tenants=32, puts_per_tenant=48, window=512,
        ),
    },
    "codec_encode": lambda: bench_codec_pair(
        payload_bytes=4 * 1024 * 1024, rounds=8, decode=False, repeats=5,
    ),
    "codec_decode": lambda: bench_codec_pair(
        payload_bytes=4 * 1024 * 1024, rounds=8, decode=True, repeats=5,
    ),
    "merge_chunks": lambda: {
        s: bench_merge(
            optimized=(s == "optimized"),
            runs=400, run_bytes=4096, rounds=200,
        )
        for s in ("baseline", "optimized")
    },
    "recovery_replay": lambda: {
        s: bench_replay(
            optimized=(s == "optimized"), objects=200, object_bytes=16384,
        )
        for s in ("baseline", "optimized")
    },
    "recovery_parallel_download": lambda: {
        s: bench_recovery(
            optimized=(s == "optimized"), objects=150, object_bytes=8192,
        )
        for s in ("baseline", "optimized")
    },
    "placement_stripe_read": lambda: {
        s: bench_placement_read(
            optimized=(s == "optimized"), objects=120, object_bytes=8192,
        )
        for s in ("baseline", "optimized")
    },
    "placement_mirror1_passthrough": lambda: {
        "baseline": bench_pipeline(
            optimized=True, updates=2000, page_size=8192,
        ),
        "optimized": bench_pipeline(
            optimized=True, updates=2000, page_size=8192,
            cloud_factory=_mirror1_store,
        ),
    },
}


def remeasure(name: str) -> dict | None:
    """Re-run one benchmark pair at canonical scale.

    Returns ``{"baseline": ..., "optimized": ..., "speedup": ...}`` or
    ``None`` for benchmarks without a registered re-measurement.
    """
    factory = REMEASURE.get(name)
    if factory is None:
        return None
    series = factory()
    series["speedup"] = (
        series["optimized"] / series["baseline"] if series["baseline"] else 0.0
    )
    return series


def render(report: dict) -> str:
    lines = [
        f"perf report ({report['machine']['cpus']} CPUs, "
        f"scale={report['scale']})",
        f"  {'benchmark':24} {'baseline':>12} {'optimized':>12} "
        f"{'speedup':>8}  unit",
    ]
    for name, entry in report["benchmarks"].items():
        lines.append(
            f"  {name:24} {entry['baseline']:>12.1f} "
            f"{entry['optimized']:>12.1f} {entry['speedup']:>7.2f}x  "
            f"{entry['unit']}"
        )
    return "\n".join(lines)


def dump(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
