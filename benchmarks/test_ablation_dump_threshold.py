"""Ablation: the 150% dump threshold (Alg. 3, line 9).

Ginja uploads a fresh dump once the cloud-side DB objects exceed 150%
of the local database size, trading re-upload bandwidth (dumps are big)
against storage (incremental checkpoints accumulate).  This sweep runs
the same checkpoint-heavy workload at several thresholds and reports
dumps taken, bytes uploaded and average cloud storage — the two sides
of the §7.1 cost trade-off (C_DB_PUT vs C_DB_Storage).
"""

from __future__ import annotations

from repro.cloud.memory import InMemoryObjectStore
from repro.cloud.simulated import SimulatedCloud
from repro.common.units import GB, MiB
from repro.core.config import GinjaConfig
from repro.core.ginja import Ginja
from repro.db.engine import EngineConfig, MiniDB
from repro.db.profiles import POSTGRES_PROFILE
from repro.metrics import TextTable
from repro.storage.memory import MemoryFileSystem
from repro.workloads import UpdateStream

THRESHOLDS = (1.1, 1.5, 2.0, 3.0)
CHECKPOINTS = 12
UPDATES_PER_CHECKPOINT = 120


def run_threshold(threshold: float) -> dict:
    cloud = SimulatedCloud(backend=InMemoryObjectStore(), time_scale=0.0)
    disk = MemoryFileSystem()
    engine_config = EngineConfig(wal_segment_size=1 * MiB,
                                 auto_checkpoint=False)
    MiniDB.create(disk, POSTGRES_PROFILE, engine_config).close()
    config = GinjaConfig(batch=20, safety=400, batch_timeout=0.02,
                         safety_timeout=10.0, dump_threshold=threshold)
    ginja = Ginja(disk, cloud, POSTGRES_PROFILE, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, engine_config)
    stream = UpdateStream(db, keyspace=400, value_bytes=150)
    for _ in range(CHECKPOINTS):
        stream.issue(UPDATES_PER_CHECKPOINT)
        db.checkpoint()
        ginja.drain(timeout=30.0)
    stats = ginja.stats.snapshot()
    meter = cloud.meter
    elapsed = cloud.elapsed()
    avg_stored_kb = meter.average_stored_bytes(0.0, elapsed) / 1000
    ginja.stop()
    return dict(
        dumps=stats["dumps"],
        db_uploaded_mb=stats["db_bytes"] / 1e6,
        avg_stored_kb=avg_stored_kb,
        final_db_cloud_kb=ginja.view.total_db_bytes() / 1000,
    )


def test_ablation_dump_threshold(benchmark, print_report):
    results = benchmark.pedantic(
        lambda: {t: run_threshold(t) for t in THRESHOLDS},
        rounds=1, iterations=1,
    )
    table = TextTable(
        ["threshold", "dumps", "DB bytes uploaded (MB)",
         "avg cloud storage (kB)", "final DB objects (kB)"],
        title="Ablation — dump threshold sweep "
              f"({CHECKPOINTS} checkpoints x {UPDATES_PER_CHECKPOINT} updates)",
    )
    for threshold in THRESHOLDS:
        row = results[threshold]
        table.add(threshold, row["dumps"], row["db_uploaded_mb"],
                  row["avg_stored_kb"], row["final_db_cloud_kb"])
    print_report(table.render())

    # The trade-off: an aggressive threshold dumps more often (more
    # upload traffic); a lax one lets checkpoint data accumulate in the
    # cloud (more storage).
    assert results[1.1]["dumps"] >= results[3.0]["dumps"]
    assert (
        results[3.0]["final_db_cloud_kb"]
        >= results[1.1]["final_db_cloud_kb"] * 0.9
    )
