#!/usr/bin/env python3
"""Quickstart: protect a database with Ginja, lose the machine, recover.

This walks the paper's core story in ~60 lines of API:

1. a transactional database (MiniDB with the PostgreSQL I/O profile)
   runs on a Ginja-mounted file system;
2. Ginja replicates every commit to a cloud object store under the
   Batch/Safety model (here B=10, S=100);
3. the primary site is destroyed;
4. `Ginja.recover` rebuilds the database files from the bucket and the
   DBMS's own crash recovery brings the data back.

Run:  python examples/quickstart.py
"""

from repro.cloud import InMemoryObjectStore, SimulatedCloud, WAN_LATENCY
from repro.core import Ginja, GinjaConfig
from repro.db import EngineConfig, MiniDB, POSTGRES_PROFILE
from repro.storage import MemoryFileSystem


def main() -> None:
    # --- the cloud: an S3-like bucket with realistic WAN latencies,
    #     slept at 1% of modeled time so the demo is snappy.
    bucket = InMemoryObjectStore()
    cloud = SimulatedCloud(backend=bucket, latency=WAN_LATENCY, time_scale=0.01)

    # --- primary site: a fresh database, then Ginja mounted over it.
    primary_disk = MemoryFileSystem()
    engine_config = EngineConfig(wal_segment_size=1024 * 1024)
    MiniDB.create(primary_disk, POSTGRES_PROFILE, engine_config).close()

    config = GinjaConfig(batch=10, safety=100,
                         batch_timeout=0.2, safety_timeout=5.0)
    ginja = Ginja(primary_disk, cloud, POSTGRES_PROFILE, config)
    ginja.start(mode="boot")          # upload segments + initial dump
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, engine_config)

    # --- normal operation: commits flow to the cloud in batches of B.
    print("committing 200 account rows through Ginja...")
    for account in range(200):
        db.put("accounts", f"acct-{account}", f"balance={account * 10}".encode())
    db.checkpoint()
    ginja.drain(timeout=30.0)
    health = ginja.health()
    print(f"  cloud now holds {len(cloud.list())} objects, "
          f"confirmed ts={health['confirmed_ts']}, "
          f"pending updates={health['pending_updates']}")

    # --- disaster: the primary machine is gone.  Only `bucket` survives.
    ginja.stop()
    del db, primary_disk
    print("disaster! primary site lost; recovering from the bucket...")

    secondary_disk = MemoryFileSystem()
    ginja2, report = Ginja.recover(cloud, secondary_disk,
                                   POSTGRES_PROFILE, config)
    recovered = MiniDB.open(ginja2.fs, POSTGRES_PROFILE, engine_config)
    print(f"  restored {report.files_restored} files from dump ts="
          f"{report.dump_ts}, replayed {report.wal_objects_applied} WAL "
          f"objects, redo applied {recovered.recovered_ops} ops")

    # --- verify every row came back.
    missing = [
        account for account in range(200)
        if recovered.get("accounts", f"acct-{account}")
        != f"balance={account * 10}".encode()
    ]
    assert not missing, f"lost rows: {missing[:5]}"
    print(f"  all {recovered.row_count('accounts')} rows recovered "
          "— RPO respected.")
    ginja2.stop()
    print("done.")


if __name__ == "__main__":
    main()
