#!/usr/bin/env python3
"""Provider-scale disaster tolerance with multi-cloud replication (§6).

Cloud-wide outages happen [Gunawi et al., SoCC'16]; the paper's §6 notes
Ginja "supports the replication of objects in multiple clouds, for
tolerating provider-scale failures".  This example protects a MySQL-
profile database across two providers, kills one provider mid-run,
keeps operating on the surviving quorum, repairs the failed provider
when it returns, and finally recovers from the replica that never saw
part of the traffic.

Run:  python examples/multi_cloud_dr.py
"""

from repro.cloud import (
    FaultPolicy,
    InMemoryObjectStore,
    MultiCloudStore,
    SimulatedCloud,
)
from repro.core import Ginja, GinjaConfig
from repro.db import EngineConfig, MiniDB, MYSQL_PROFILE
from repro.storage import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=512 * 1024)


def main() -> None:
    # Two independent providers; provider A will suffer an outage.
    backend_a, backend_b = InMemoryObjectStore(), InMemoryObjectStore()
    faults_a = FaultPolicy()
    provider_a = SimulatedCloud(backend=backend_a, faults=faults_a,
                                time_scale=0.0)
    provider_b = SimulatedCloud(backend=backend_b, time_scale=0.0)
    multi = MultiCloudStore([provider_a, provider_b], write_quorum=1)

    disk = MemoryFileSystem()
    MiniDB.create(disk, MYSQL_PROFILE, ENGINE).close()
    config = GinjaConfig(batch=10, safety=100, batch_timeout=0.05,
                         safety_timeout=5.0)
    ginja = Ginja(disk, multi, MYSQL_PROFILE, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, MYSQL_PROFILE, ENGINE)

    print("phase 1: both providers healthy...")
    for i in range(30):
        db.put("inventory", f"sku-{i}", b"qty=100")
    ginja.drain(timeout=30.0)
    print(f"  provider A: {len(backend_a.list())} objects, "
          f"provider B: {len(backend_b.list())} objects")

    print("phase 2: provider A goes down; writes continue on the quorum...")
    faults_a.fail_next(10_000)
    for i in range(30, 60):
        db.put("inventory", f"sku-{i}", b"qty=100")
    ginja.drain(timeout=30.0)
    print(f"  replica errors absorbed: {multi.replica_errors}; "
          f"A={len(backend_a.list())} objects, B={len(backend_b.list())}")

    print("phase 3: provider A returns; anti-entropy repair...")
    faults_a = FaultPolicy()  # outage over
    provider_a._faults = faults_a
    copies = multi.repair()
    print(f"  re-replicated {copies} object copies to provider A")

    ginja.stop()
    multi.close()

    print("phase 4: disaster at the primary — recover from provider B alone...")
    target = MemoryFileSystem()
    ginja2, report = Ginja.recover(provider_b, target, MYSQL_PROFILE, config)
    recovered = MiniDB.open(ginja2.fs, MYSQL_PROFILE, ENGINE)
    present = sum(
        1 for i in range(60)
        if recovered.get("inventory", f"sku-{i}") == b"qty=100"
    )
    print(f"  recovered {present}/60 SKUs from the surviving provider "
          f"({report.wal_objects_applied} WAL objects replayed)")
    assert present == 60
    ginja2.stop()
    print("done.")


if __name__ == "__main__":
    main()
