#!/usr/bin/env python3
"""Automated failover: heartbeat, detection, promotion.

The paper leaves failure detection and switchover to "the procedures
defined in the organization disaster recovery plan" (§5).  This example
shows the optional `repro.failover` add-on closing that gap with zero
extra infrastructure — the DR bucket itself carries the heartbeat:

1. the primary runs a Ginja-protected database and beats into the bucket;
2. a standby polls the heartbeat;
3. the primary dies mid-workload; after three stale polls the standby
   declares failure, recovers from the bucket, and promotes itself;
4. the promoted database is immediately Ginja-protected again.

Run:  python examples/automated_failover.py
"""

from repro.cloud import InMemoryObjectStore
from repro.core import Ginja, GinjaConfig
from repro.db import EngineConfig, MiniDB, POSTGRES_PROFILE
from repro.failover import FailoverCoordinator, FailureDetector, HeartbeatWriter
from repro.storage import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=1024 * 1024)
CONFIG = GinjaConfig(batch=10, safety=100, batch_timeout=0.1,
                     safety_timeout=5.0)


def main() -> None:
    bucket = InMemoryObjectStore()

    # --- primary site comes up, protected and heartbeating.
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    ginja = Ginja(disk, bucket, POSTGRES_PROFILE, CONFIG)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)
    heart = HeartbeatWriter(bucket)

    print("primary: committing orders and heartbeating...")
    for i in range(120):
        db.put("orders", f"order-{i}", f"item-{i % 7}".encode())
        if i % 20 == 0:
            heart.beat_once()
    ginja.drain(timeout=30.0)
    heart.beat_once()
    print(f"  {db.row_count('orders')} orders committed, "
          f"heartbeat seq={heart.beats_sent}")

    # --- the standby watches.
    detector = FailureDetector(bucket, misses_allowed=3)
    assert not detector.poll(), "primary should look alive"
    print("standby: heartbeat fresh, primary healthy")

    # --- disaster: the primary site burns down.  Heartbeats stop.
    ginja.stop()
    del db, disk
    print("primary: DOWN (no more heartbeats)")

    promoted = []
    coordinator = FailoverCoordinator(
        bucket, POSTGRES_PROFILE,
        ginja_config=CONFIG, engine_config=ENGINE,
        detector=detector, poll_interval=0.05,
        on_promote=lambda new_db, _g: promoted.append(new_db),
    )
    result = coordinator.run()
    print(f"standby: failure declared after {result.polls} polls; "
          f"failover {'succeeded' if result.failed_over else 'FAILED'}")
    print(f"  recovered {result.recovered_rows} rows "
          f"({result.files_restored} files)")
    assert result.failed_over and promoted

    # --- the promoted standby serves and is protected again.
    new_db = result.db
    assert new_db.get("orders", "order-0") == b"item-0"
    new_db.put("orders", "order-after-failover", b"item-new")
    result.ginja.drain(timeout=30.0)
    print("standby: serving writes, Ginja protection re-established")
    result.ginja.stop()
    print("done.")


if __name__ == "__main__":
    main()
