#!/usr/bin/env python3
"""Point-in-time recovery: surviving ransomware (§5.4).

The paper motivates PITR retention with operator mistakes and
ransomware ("such as the recent WannaCry virus").  The default garbage
collector deletes superseded snapshots; with a retention policy, Ginja
keeps the last N dump generations, so the database can be restored to a
state *before* the attack even though the attacker's writes were
faithfully replicated to the cloud.

Run:  python examples/ransomware_pitr.py
"""

from repro.cloud import InMemoryObjectStore, SimulatedCloud
from repro.core import Ginja, GinjaConfig, RetentionPolicy, verify_backup
from repro.db import EngineConfig, MiniDB, POSTGRES_PROFILE
from repro.storage import MemoryFileSystem

ENGINE = EngineConfig(wal_segment_size=1024 * 1024)


def protected_db(cloud, config):
    disk = MemoryFileSystem()
    MiniDB.create(disk, POSTGRES_PROFILE, ENGINE).close()
    ginja = Ginja(disk, cloud, POSTGRES_PROFILE, config)
    ginja.start(mode="boot")
    return ginja, MiniDB.open(ginja.fs, POSTGRES_PROFILE, ENGINE)


def main() -> None:
    cloud = SimulatedCloud(backend=InMemoryObjectStore(), time_scale=0.0)
    config = GinjaConfig(
        batch=10, safety=100, batch_timeout=0.05, safety_timeout=5.0,
        retention=RetentionPolicy.keep(3),   # keep 3 snapshot generations
        dump_threshold=1.0,                  # dump aggressively for the demo
    )
    ginja, db = protected_db(cloud, config)

    # --- day 1: good data, checkpointed and replicated.
    print("day 1: writing payroll records...")
    for emp in range(50):
        db.put("payroll", f"emp-{emp}", b"salary=50000")
    ginja.drain(timeout=30.0)
    db.checkpoint()
    ginja.drain(timeout=30.0)
    good_ts = max(m.ts for m in ginja.view.db_objects())
    print(f"  snapshot anchor: DB-object ts {good_ts}")

    # --- day 2: ransomware encrypts every row THROUGH the database.
    print("day 2: ransomware overwrites all rows (and Ginja replicates it,")
    print("        as it must — it cannot tell good writes from bad)...")
    for emp in range(50):
        db.put("payroll", f"emp-{emp}", b"ENCRYPTED-PAY-1-BTC")
    ginja.drain(timeout=30.0)
    db.checkpoint()
    ginja.drain(timeout=30.0)
    ginja.stop()

    # --- recovery to the latest state: the damage is replicated.
    latest_fs = MemoryFileSystem()
    g_latest, _ = Ginja.recover(cloud, latest_fs, POSTGRES_PROFILE, config)
    latest = MiniDB.open(g_latest.fs, POSTGRES_PROFILE, ENGINE)
    print(f"  latest backup: emp-0 = {latest.get('payroll', 'emp-0')!r}  (bad!)")
    g_latest.stop()

    # --- recovery to the retained day-1 generation: clean data.
    old_fs = MemoryFileSystem()
    g_old, report = Ginja.recover(
        cloud, old_fs, POSTGRES_PROFILE, config, upto_ts=good_ts
    )
    restored = MiniDB.open(g_old.fs, POSTGRES_PROFILE, ENGINE)
    value = restored.get("payroll", "emp-0")
    print(f"  PITR to ts {good_ts}: emp-0 = {value!r}  "
          f"({report.checkpoints_applied} checkpoints applied)")
    assert value == b"salary=50000"
    bad = sum(
        1 for emp in range(50)
        if restored.get("payroll", f"emp-{emp}") != b"salary=50000"
    )
    print(f"  {50 - bad}/50 rows clean — the attack is undone.")
    g_old.stop()

    # --- §5.4's backup verification, run against the bucket.
    report = verify_backup(
        cloud, POSTGRES_PROFILE, config, engine_config=ENGINE,
        checks=[lambda replica: []
                if replica.row_count("payroll") == 50
                else ["payroll table incomplete"]],
    )
    print(f"  backup verification: {report.summary()}")
    print("done.")


if __name__ == "__main__":
    main()
