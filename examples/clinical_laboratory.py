#!/usr/bin/env python3
"""The paper's Laboratory scenario (Table 2): DR for about $0.42/month.

The real deployment behind Table 2 is a clinical laboratory running a
10 GB database at 30 transactions/minute (20% updates -> 6 updates per
minute), synchronized to S3 once per minute.  This example:

1. prices that setup with the §7 analytic cost model, reproducing the
   paper's $0.42 (1 sync/min) and $1.50 (6 sync/min) against the $93.4
   EC2 Pilot-Light alternative;
2. actually *runs* a scaled-down laboratory for a simulated hour —
   an update stream through Ginja with time-based batching — and shows
   that the metered bill extrapolates to the same order of magnitude.

Run:  python examples/clinical_laboratory.py
"""

from repro.cloud import InMemoryObjectStore, SimulatedCloud, S3_STANDARD_2017
from repro.core import Ginja, GinjaConfig
from repro.costmodel import (
    LABORATORY,
    M3_MEDIUM_PILOT_LIGHT,
    recovery_cost,
    scenario_cost,
)
from repro.db import EngineConfig, MiniDB, POSTGRES_PROFILE
from repro.metrics import TextTable
from repro.storage import MemoryFileSystem
from repro.workloads import UpdateStream


def analytic_part() -> None:
    table = TextTable(
        ["configuration", "$/month", "vs EC2 Pilot Light"],
        title="Table 2 — Laboratory (10GB, 6 updates/min), May-2017 S3 prices",
    )
    for syncs in (1.0, 6.0):
        cost = scenario_cost(LABORATORY, syncs)
        factor = M3_MEDIUM_PILOT_LIGHT.monthly_cost / cost.total
        table.add(f"Ginja, {syncs:.0f} sync/min", cost.total, f"{factor:.0f}x cheaper")
    table.add(M3_MEDIUM_PILOT_LIGHT.name, M3_MEDIUM_PILOT_LIGHT.monthly_cost, "-")
    print(table)
    print(f"\nrecovering after a disaster would cost "
          f"${recovery_cost(LABORATORY):.2f} (free to a same-region VM)\n")


def simulated_part() -> None:
    print("running a scaled laboratory for a simulated hour...")
    bucket = InMemoryObjectStore()
    cloud = SimulatedCloud(backend=bucket, time_scale=0.0)

    disk = MemoryFileSystem()
    engine_config = EngineConfig(wal_segment_size=1024 * 1024)
    MiniDB.create(disk, POSTGRES_PROFILE, engine_config).close()
    # Time-based batching: one synchronization per (scaled) minute.
    config = GinjaConfig(batch=1000, safety=5000,
                         batch_timeout=0.05, safety_timeout=10.0)
    ginja = Ginja(disk, cloud, POSTGRES_PROFILE, config)
    ginja.start(mode="boot")
    db = MiniDB.open(ginja.fs, POSTGRES_PROFILE, engine_config)
    stream = UpdateStream(db, keyspace=500, value_bytes=120)

    # 6 updates/minute for 60 minutes = 360 updates; the T_B timeout
    # (scaled to 50 ms per simulated minute) batches each minute's worth.
    import time
    for _minute in range(60):
        stream.issue(6)
        time.sleep(0.055)
    db.checkpoint()
    ginja.drain(timeout=30.0)

    stats = ginja.stats.snapshot()
    print(f"  {stream.updates_issued} updates -> "
          f"{stats['wal_objects']:.0f} WAL objects, "
          f"{stats['db_objects']:.0f} DB objects, "
          f"{stats['gc_deletes']:.0f} GC deletes")
    meter = cloud.meter
    print(f"  cloud requests: {meter.puts.count} PUTs, "
          f"{meter.deletes.count} DELETEs, "
          f"{meter.stored_bytes / 1024:.0f} KiB stored")
    # Extrapolate the metered window to a month (the window was one
    # simulated hour = 3600 store-seconds of the real deployment).
    monthly = S3_STANDARD_2017.monthly_run_rate(meter, elapsed=3600.0)
    print(f"  metered monthly run-rate at this update volume: "
          f"${monthly:.2f}/month (storage scales with the real 10 GB DB)")
    ginja.stop()


def main() -> None:
    analytic_part()
    simulated_part()
    print("done.")


if __name__ == "__main__":
    main()
