#!/usr/bin/env python3
"""Sizing a hospital-scale deployment (§7's cost analysis, visually).

For the paper's Hospital scenario (1 TB database, ~138 updates/minute)
this walks the operator's planning questions:

1. Figure 1: what fits under my monthly budget?
2. Figure 4: how does the batch size drive my bill?
3. Table 2: what would the Pilot-Light alternative cost?
4. What does each retained PITR snapshot add?

All analytic — runs instantly, prints ASCII charts.

Run:  python examples/hospital_sizing.py
"""

from repro.costmodel import (
    BudgetFrontier,
    GinjaCostModel,
    HOSPITAL,
    M3_LARGE_PILOT_LIGHT,
    recovery_cost,
    scenario_cost,
)
from repro.costmodel.model import WorkloadSpec
from repro.metrics.charts import bar_chart, line_chart


def question_1_budget() -> None:
    print("Q1. What fits under $35/month on S3?")
    frontier = BudgetFrontier(35.0, storage_overhead=1.25)
    points = [
        (p.syncs_per_hour, p.max_db_size_gb)
        for p in frontier.curve(max_rate_per_hour=360, steps=13)
    ]
    print(line_chart(points, width=52, height=10,
                     title="  $35/month capacity frontier",
                     x_label="syncs/hour", y_label="max DB GB"))
    rate = frontier.max_syncs_per_hour(HOSPITAL.spec.db_size_gb)
    print(f"  -> the 1 TB hospital DB affords ~{rate:.0f} syncs/hour "
          f"(every ~{3600 / max(rate, 1e-9):.0f}s) at $35/month\n")


def question_2_batch() -> None:
    print("Q2. How does the batch size B drive the monthly bill?")
    model = GinjaCostModel()
    items = []
    for batch in (10, 50, 100, 500, 1000):
        cost = model.monthly_cost(HOSPITAL.spec, batch).total
        items.append((f"B={batch}", cost))
    print(bar_chart(items, width=40,
                    title="  Hospital monthly cost by batch size",
                    unit=" $/mo"))
    print()


def question_3_alternative() -> None:
    print("Q3. Ginja vs the Pilot-Light EC2 replica (Table 2):")
    items = [
        ("Ginja 1 sync/min", scenario_cost(HOSPITAL, 1.0).total),
        ("Ginja 6 sync/min", scenario_cost(HOSPITAL, 6.0).total),
        (M3_LARGE_PILOT_LIGHT.name, M3_LARGE_PILOT_LIGHT.monthly_cost),
    ]
    print(bar_chart(items, width=40, unit=" $/mo"))
    factor = M3_LARGE_PILOT_LIGHT.monthly_cost / scenario_cost(HOSPITAL, 1.0).total
    print(f"  -> {factor:.0f}x cheaper; a WAN recovery would cost "
          f"${recovery_cost(HOSPITAL):.0f} (free to a same-region VM)\n")


def question_4_pitr() -> None:
    print("Q4. What does PITR retention add?")
    model = GinjaCostModel()
    base = scenario_cost(HOSPITAL, 1.0).total
    items = [("no snapshots", base)]
    for snapshots in (1, 3, 7):
        extra = model.pitr_storage_cost(HOSPITAL.spec, snapshots)
        items.append((f"keep {snapshots}", base + extra))
    print(bar_chart(items, width=40,
                    title="  monthly cost with retained generations",
                    unit=" $/mo"))
    print()


def question_5_smaller_shop() -> None:
    print("Q5. And if the database were 10x smaller (100 GB)?")
    model = GinjaCostModel()
    small = WorkloadSpec(db_size_gb=100.0, updates_per_minute=138.0)
    cost = model.monthly_cost(small, 100)
    print(f"  C_Total = ${cost.total:.2f}/month "
          f"(storage ${cost.db_storage:.2f} + WAL PUTs ${cost.wal_put:.2f} "
          f"+ ckpt PUTs ${cost.db_put:.2f} + WAL storage "
          f"${cost.wal_storage:.4f})")


def main() -> None:
    for step in (question_1_budget, question_2_batch, question_3_alternative,
                 question_4_pitr, question_5_smaller_shop):
        step()
    print("done.")


if __name__ == "__main__":
    main()
