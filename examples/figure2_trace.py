#!/usr/bin/env python3
"""Reproduce the paper's Figure 2 as a live trace.

Figure 2 illustrates B and S: with B=2 every cloud backup carries two
updates; with S=20, the DBMS blocks at update U21 if none of the
pending synchronizations has been acknowledged yet.

This script drives the actual commit pipeline against a cloud whose
acknowledgements are held back, prints each event as it happens, and
shows the block at exactly U21 — then releases the cloud and shows the
unblock.

Run:  python examples/figure2_trace.py
"""

import threading
import time

from repro.cloud import InMemoryObjectStore, build_transport
from repro.common.events import EventBus
from repro.core import GinjaConfig
from repro.core.cloud_view import CloudView
from repro.core.codec import ObjectCodec
from repro.core.commit_pipeline import CommitPipeline

B, S = 2, 20


class HeldCloud(InMemoryObjectStore):
    """PUTs park on a gate until released — acknowledgements withheld."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()
        self.attempts = 0
        self._lock = threading.Lock()

    def put(self, key, data):
        with self._lock:
            self.attempts += 1
            n = self.attempts
        print(f"    cloud: PUT #{n} ({key}) ... holding the ACK")
        self.gate.wait(timeout=30)
        super().put(key, data)
        print(f"    cloud: PUT #{n} acknowledged")


def main() -> None:
    cloud = HeldCloud()
    config = GinjaConfig(batch=B, safety=S, batch_timeout=0.05,
                         safety_timeout=60.0, uploaders=5)
    view = CloudView()
    bus = EventBus()
    transport = build_transport(cloud, config, bus=bus)
    pipeline = CommitPipeline(config, transport, ObjectCodec(), view, bus)
    pipeline.start()
    print(f"Figure 2 trace: B={B}, S={S}\n")

    blocked_at = None
    unblocked = threading.Event()

    def writer():
        nonlocal blocked_at
        for i in range(1, S + 2):  # U1 .. U21
            started = time.monotonic()
            pipeline.submit("segment", i * 512, f"U{i}".encode())
            waited = time.monotonic() - started
            if waited > 0.2:
                blocked_at = i
                print(f"  U{i}: BLOCKED for {waited:.2f}s "
                      f"(more than S={S} unconfirmed)")
            else:
                print(f"  U{i}: committed (pending="
                      f"{pipeline.pending_updates()})")
        unblocked.set()

    thread = threading.Thread(target=writer)
    thread.start()
    # Let the writer run into the block, then release the cloud.
    time.sleep(1.5)
    assert not unblocked.is_set(), "expected U21 to block"
    print("\n  >>> releasing the cloud's acknowledgements <<<\n")
    cloud.gate.set()
    thread.join(timeout=30)
    pipeline.drain(timeout=30)
    pipeline.stop(drain_timeout=5)

    print(f"\nresult: the DBMS blocked at U{blocked_at} "
          f"(the paper's U{S + 1}); after the ACKs arrived it resumed.")
    assert blocked_at == S + 1
    print(f"cloud received {cloud.attempts} WAL-object PUTs "
          f"(~{S + 1} updates / B={B})")
    print("done.")


if __name__ == "__main__":
    main()
